//! Sandbox (container) instances.

use crate::action::ActionName;
use sesemi_sim::SimTime;
use std::fmt;

/// Unique identifier of a sandbox instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SandboxId(pub u64);

impl fmt::Display for SandboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sandbox-{}", self.0)
    }
}

/// Lifecycle state of a sandbox.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SandboxState {
    /// The container is being provisioned (image pull + start).  Requests may
    /// already be assigned to it; they wait for readiness.
    Starting,
    /// The container is up and can execute activations.
    Running,
}

/// A container instance hosting one action.
#[derive(Clone, Debug)]
pub struct Sandbox {
    /// Unique id.
    pub id: SandboxId,
    /// The action this container runs.
    pub action: ActionName,
    /// The invoker node hosting it.
    pub node: usize,
    /// Memory budget charged against the node.
    pub memory_bytes: u64,
    /// Maximum concurrent activations.
    pub concurrency_limit: usize,
    /// Lifecycle state.
    pub state: SandboxState,
    /// Number of activations currently executing (or assigned while
    /// starting).
    pub active: usize,
    /// When the container was created.
    pub created_at: SimTime,
    /// Last time an activation was assigned or finished — the keep-alive
    /// clock.
    pub last_used: SimTime,
    /// Total activations this sandbox has served (assigned).
    pub total_served: u64,
    /// Cold starts are counted once, on creation.
    pub was_cold_started: bool,
}

impl Sandbox {
    /// Creates a new (cold-starting) sandbox.
    #[must_use]
    pub fn new(
        id: SandboxId,
        action: ActionName,
        node: usize,
        memory_bytes: u64,
        concurrency_limit: usize,
        now: SimTime,
    ) -> Self {
        Sandbox {
            id,
            action,
            node,
            memory_bytes,
            concurrency_limit,
            state: SandboxState::Starting,
            active: 0,
            created_at: now,
            last_used: now,
            total_served: 0,
            was_cold_started: true,
        }
    }

    /// Whether this sandbox can accept one more activation right now.
    #[must_use]
    pub fn has_free_slot(&self) -> bool {
        self.active < self.concurrency_limit
    }

    /// Whether the sandbox is idle (no activations in flight).
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.active == 0
    }

    /// Whether the sandbox's keep-alive window has expired at `now`.
    #[must_use]
    pub fn keep_alive_expired(&self, now: SimTime, keep_alive: sesemi_sim::SimDuration) -> bool {
        self.is_idle() && now.duration_since(self.last_used) >= keep_alive
    }

    /// Assigns one activation to the sandbox.
    pub fn assign(&mut self, now: SimTime) {
        debug_assert!(self.has_free_slot(), "assigning to a full sandbox");
        self.active += 1;
        self.total_served += 1;
        self.last_used = now;
    }

    /// Marks one activation as finished.
    ///
    /// # Panics
    /// Panics if the sandbox has no active activation (caller bug).
    pub fn finish(&mut self, now: SimTime) {
        assert!(
            self.active > 0,
            "finishing an activation on an idle sandbox"
        );
        self.active -= 1;
        self.last_used = now;
    }

    /// Marks the container as started (cold start completed).
    pub fn mark_running(&mut self) {
        self.state = SandboxState::Running;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesemi_sim::SimDuration;

    fn sandbox() -> Sandbox {
        Sandbox::new(
            SandboxId(1),
            ActionName::new("f"),
            0,
            256 * 1024 * 1024,
            2,
            SimTime::from_secs(10),
        )
    }

    #[test]
    fn new_sandboxes_start_cold_and_starting() {
        let s = sandbox();
        assert_eq!(s.state, SandboxState::Starting);
        assert!(s.was_cold_started);
        assert!(s.is_idle());
        assert!(s.has_free_slot());
        assert_eq!(s.to_owned().id.to_string(), "sandbox-1");
    }

    #[test]
    fn concurrency_slots_are_tracked() {
        let mut s = sandbox();
        s.assign(SimTime::from_secs(11));
        assert!(!s.is_idle());
        assert!(s.has_free_slot());
        s.assign(SimTime::from_secs(12));
        assert!(!s.has_free_slot());
        assert_eq!(s.total_served, 2);
        s.finish(SimTime::from_secs(13));
        assert!(s.has_free_slot());
        s.finish(SimTime::from_secs(14));
        assert!(s.is_idle());
        assert_eq!(s.last_used, SimTime::from_secs(14));
    }

    #[test]
    #[should_panic(expected = "idle sandbox")]
    fn finishing_on_idle_sandbox_panics() {
        let mut s = sandbox();
        s.finish(SimTime::from_secs(11));
    }

    #[test]
    fn keep_alive_expiry_requires_idleness_and_elapsed_time() {
        let mut s = sandbox();
        let keep_alive = SimDuration::from_secs(180);
        s.assign(SimTime::from_secs(20));
        // Busy sandboxes never expire.
        assert!(!s.keep_alive_expired(SimTime::from_secs(1_000), keep_alive));
        s.finish(SimTime::from_secs(30));
        assert!(!s.keep_alive_expired(SimTime::from_secs(100), keep_alive));
        assert!(s.keep_alive_expired(SimTime::from_secs(30 + 180), keep_alive));
    }

    #[test]
    fn mark_running_transitions_state() {
        let mut s = sandbox();
        s.mark_running();
        assert_eq!(s.state, SandboxState::Running);
    }
}
