//! Error type for the serverless platform substrate.

use std::fmt;

/// Errors raised by the platform controller and storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The action has not been registered with the controller.
    UnknownAction(String),
    /// The referenced sandbox does not exist (it may have been evicted).
    UnknownSandbox(u64),
    /// No invoker has enough free memory to start another container and no
    /// warm container has a free slot; the request must wait.
    ClusterSaturated {
        /// Memory the container would have needed, in bytes.
        required_bytes: u64,
    },
    /// The requested object is not in cloud storage.
    ObjectNotFound(String),
    /// An action was registered twice with conflicting specifications.
    ActionAlreadyRegistered(String),
    /// The sandbox is not in a state that allows the requested transition
    /// (e.g. finishing an invocation on an idle sandbox).
    InvalidSandboxState {
        /// Sandbox id.
        sandbox: u64,
        /// Description of the violated expectation.
        reason: String,
    },
    /// An external scheduler placed a container on a node that cannot host it
    /// (out of range, draining, retired or without enough free memory) — a
    /// policy bug the controller refuses rather than silently re-placing.
    InvalidPlacement {
        /// The node the scheduler chose.
        node: usize,
        /// Memory the container would have needed, in bytes.
        required_bytes: u64,
    },
    /// A node-lifecycle operation (drain, remove) was requested on a node
    /// that is not in a state that allows it.
    InvalidNodeState {
        /// The node the operation targeted.
        node: usize,
        /// Description of the violated expectation.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownAction(name) => write!(f, "unknown action: {name}"),
            PlatformError::UnknownSandbox(id) => write!(f, "unknown sandbox: {id}"),
            PlatformError::ClusterSaturated { required_bytes } => write!(
                f,
                "cluster saturated: no node can host another {required_bytes}-byte container"
            ),
            PlatformError::ObjectNotFound(key) => write!(f, "object not found in storage: {key}"),
            PlatformError::ActionAlreadyRegistered(name) => {
                write!(f, "action already registered: {name}")
            }
            PlatformError::InvalidSandboxState { sandbox, reason } => {
                write!(f, "invalid state for sandbox {sandbox}: {reason}")
            }
            PlatformError::InvalidPlacement {
                node,
                required_bytes,
            } => write!(
                f,
                "invalid placement: node {node} cannot host a {required_bytes}-byte container"
            ),
            PlatformError::InvalidNodeState { node, reason } => {
                write!(f, "invalid state for node {node}: {reason}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PlatformError::UnknownAction("f".into())
            .to_string()
            .contains("f"));
        assert!(PlatformError::ClusterSaturated {
            required_bytes: 256
        }
        .to_string()
        .contains("256"));
        assert!(PlatformError::InvalidSandboxState {
            sandbox: 3,
            reason: "idle".into()
        }
        .to_string()
        .contains("sandbox 3"));
    }
}
