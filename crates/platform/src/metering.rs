//! Cost metering: GB·second accounting per action and cluster-wide memory /
//! sandbox-count time series (the data behind Fig. 14).

use crate::action::{ActionName, ActivationRecord};
use sesemi_sim::{GbSecondMeter, SimTime, TimeSeries};
use std::collections::HashMap;

/// Collects the cost and utilization metrics the paper reports in §VI-C.
#[derive(Debug, Default)]
pub struct Metering {
    per_action_gb_seconds: HashMap<ActionName, f64>,
    cluster_memory: GbSecondMeter,
    node_capacity: GbSecondMeter,
    memory_series: TimeSeries,
    sandbox_series: TimeSeries,
    serving_series: TimeSeries,
    node_series: TimeSeries,
    // Last value pushed to each cluster-state series.  The simulator records
    // cluster state after every event, but most events change nothing — a
    // million-request trace would otherwise pin millions of identical points
    // per series in memory.  Step series lose no information by skipping
    // repeats; the GB·s integrals run off `cluster_memory`, which still sees
    // every call.
    last_memory_point: Option<f64>,
    last_sandbox_point: Option<f64>,
    last_serving_point: Option<f64>,
    activations: u64,
    cold_starts: u64,
}

impl Metering {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed activation.
    pub fn record_activation(&mut self, record: &ActivationRecord) {
        self.activations += 1;
        if record.cold_start {
            self.cold_starts += 1;
        }
        *self
            .per_action_gb_seconds
            .entry(record.action.clone())
            .or_insert(0.0) += record.gb_seconds();
    }

    /// Records the cluster state at `now`: total memory committed to
    /// sandboxes, total sandbox count, and the number currently serving.
    /// Each series is a step function, so a point is pushed only when the
    /// value actually changed since the previous call — repeated identical
    /// observations coalesce into the one point that opened the step.
    pub fn record_cluster_state(
        &mut self,
        now: SimTime,
        committed_bytes: u64,
        total_sandboxes: usize,
        serving_sandboxes: usize,
    ) {
        self.cluster_memory.set_memory(now, committed_bytes);
        let memory_gb = committed_bytes as f64 / (1024.0 * 1024.0 * 1024.0);
        if self.last_memory_point != Some(memory_gb) {
            self.memory_series.record(now, memory_gb);
            self.last_memory_point = Some(memory_gb);
        }
        let sandboxes = total_sandboxes as f64;
        if self.last_sandbox_point != Some(sandboxes) {
            self.sandbox_series.record(now, sandboxes);
            self.last_sandbox_point = Some(sandboxes);
        }
        let serving = serving_sandboxes as f64;
        if self.last_serving_point != Some(serving) {
            self.serving_series.record(now, serving);
            self.last_serving_point = Some(serving);
        }
    }

    /// Records a change in the provisioned node capacity (the invoker memory
    /// of every active or draining node) at `now` — the cost signal behind
    /// the elasticity experiments: a fixed pool pays its full capacity for
    /// the whole run, an autoscaled one only for the nodes it kept.
    pub fn record_node_capacity(&mut self, now: SimTime, provisioned_bytes: u64, nodes: usize) {
        self.node_capacity.set_memory(now, provisioned_bytes);
        self.node_series.record(now, nodes as f64);
    }

    /// GB·seconds of provisioned node capacity, integrated up to `end`.
    #[must_use]
    pub fn node_gb_seconds(&self, end: SimTime) -> f64 {
        self.node_capacity.clone().finish(end)
    }

    /// Provisioned node-count time series (one point per membership change).
    #[must_use]
    pub fn node_series(&self) -> &TimeSeries {
        &self.node_series
    }

    /// Per-action GB·second billing, as recorded by
    /// [`Metering::record_activation`].
    #[must_use]
    pub fn per_action_gb_seconds(&self) -> &HashMap<ActionName, f64> {
        &self.per_action_gb_seconds
    }

    /// GB·seconds billed for one action (per-activation execution-time ×
    /// memory metering).
    #[must_use]
    pub fn action_gb_seconds(&self, action: &ActionName) -> f64 {
        self.per_action_gb_seconds
            .get(action)
            .copied()
            .unwrap_or(0.0)
    }

    /// Total GB·seconds across all actions.
    #[must_use]
    pub fn total_gb_seconds(&self) -> f64 {
        self.per_action_gb_seconds.values().sum()
    }

    /// Cluster-level GB·seconds computed as the integral of committed sandbox
    /// memory over time — the metric Fig. 14 reports ("the number of sandbox
    /// instances times the memory budget", integrated over the workload).
    #[must_use]
    pub fn cluster_gb_seconds(&self, end: SimTime) -> f64 {
        self.cluster_memory.clone().finish(end)
    }

    /// Memory (GB) over time.
    #[must_use]
    pub fn memory_series(&self) -> &TimeSeries {
        &self.memory_series
    }

    /// Total sandbox count over time.
    #[must_use]
    pub fn sandbox_series(&self) -> &TimeSeries {
        &self.sandbox_series
    }

    /// Actively-serving sandbox count over time.
    #[must_use]
    pub fn serving_series(&self) -> &TimeSeries {
        &self.serving_series
    }

    /// Consumes the meter and hands back the `(memory, sandbox, node)` time
    /// series without cloning them — a long trace records millions of points
    /// per series, and the result build is the last reader.
    #[must_use]
    pub fn into_series(self) -> (TimeSeries, TimeSeries, TimeSeries) {
        (self.memory_series, self.sandbox_series, self.node_series)
    }

    /// Number of activations recorded.
    #[must_use]
    pub fn activation_count(&self) -> u64 {
        self.activations
    }

    /// Number of activations that caused a cold start.
    #[must_use]
    pub fn cold_start_count(&self) -> u64 {
        self.cold_starts
    }

    /// Peak committed memory observed, in bytes.
    #[must_use]
    pub fn peak_memory_bytes(&self) -> u64 {
        self.cluster_memory.peak_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActivationId;

    const GB: u64 = 1024 * 1024 * 1024;

    fn record(
        action: &str,
        start_ms: u64,
        end_ms: u64,
        cold: bool,
        memory: u64,
    ) -> ActivationRecord {
        ActivationRecord {
            id: ActivationId(start_ms),
            action: ActionName::new(action),
            submitted_at: SimTime::from_millis(start_ms),
            started_at: SimTime::from_millis(start_ms),
            completed_at: SimTime::from_millis(end_ms),
            cold_start: cold,
            memory_budget_bytes: memory,
        }
    }

    #[test]
    fn per_action_and_total_gb_seconds() {
        let mut metering = Metering::new();
        metering.record_activation(&record("a", 0, 1_000, true, GB));
        metering.record_activation(&record("a", 0, 2_000, false, GB));
        metering.record_activation(&record("b", 0, 500, false, 2 * GB));
        let a = metering.action_gb_seconds(&ActionName::new("a"));
        let b = metering.action_gb_seconds(&ActionName::new("b"));
        assert!((a - 3.0 * 1.073741824).abs() < 1e-6, "a = {a}");
        assert!((b - 0.5 * 2.147483648).abs() < 1e-6, "b = {b}");
        assert!((metering.total_gb_seconds() - a - b).abs() < 1e-9);
        assert_eq!(metering.activation_count(), 3);
        assert_eq!(metering.cold_start_count(), 1);
        assert_eq!(metering.action_gb_seconds(&ActionName::new("missing")), 0.0);
    }

    #[test]
    fn cluster_memory_integration() {
        let mut metering = Metering::new();
        metering.record_cluster_state(SimTime::ZERO, 2 * GB, 2, 1);
        metering.record_cluster_state(SimTime::from_secs(10), 4 * GB, 4, 4);
        let total = metering.cluster_gb_seconds(SimTime::from_secs(20));
        // 2 GiB for 10 s + 4 GiB for 10 s = ~64.4 GB-s (GiB -> GB factor).
        assert!((total - (2.147483648 * 10.0 + 4.294967296 * 10.0)).abs() < 1e-6);
        assert_eq!(metering.peak_memory_bytes(), 4 * GB);
        assert_eq!(metering.memory_series().len(), 2);
        assert_eq!(metering.sandbox_series().len(), 2);
        assert_eq!(metering.serving_series().len(), 2);
    }

    #[test]
    fn repeated_cluster_states_coalesce_into_one_series_point() {
        let mut metering = Metering::new();
        // A burst of no-change observations (the common case: most simulator
        // events leave the cluster shape untouched) pins exactly one point.
        for second in 0..1_000 {
            metering.record_cluster_state(SimTime::from_secs(second), 2 * GB, 2, 1);
        }
        assert_eq!(metering.memory_series().len(), 1);
        assert_eq!(metering.sandbox_series().len(), 1);
        assert_eq!(metering.serving_series().len(), 1);
        // A change in any one signal extends only that series.
        metering.record_cluster_state(SimTime::from_secs(1_000), 2 * GB, 2, 2);
        assert_eq!(metering.memory_series().len(), 1);
        assert_eq!(metering.sandbox_series().len(), 1);
        assert_eq!(metering.serving_series().len(), 2);
        // The time-weighted memory integral still covers the whole span —
        // coalescing drops repeated points, not billed time.
        let total = metering.cluster_gb_seconds(SimTime::from_secs(2_000));
        assert!((total - 2.147483648 * 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn node_capacity_integration_tracks_membership_changes() {
        let mut metering = Metering::new();
        // Two 1-GiB nodes for 10 s, then scale-in to one for 10 s.
        metering.record_node_capacity(SimTime::ZERO, 2 * GB, 2);
        metering.record_node_capacity(SimTime::from_secs(10), GB, 1);
        let total = metering.node_gb_seconds(SimTime::from_secs(20));
        assert!((total - (2.147483648 * 10.0 + 1.073741824 * 10.0)).abs() < 1e-6);
        assert_eq!(metering.node_series().len(), 2);
        // A fixed pool of the same peak size would have paid 2 GiB for 20 s.
        assert!(total < 2.147483648 * 20.0);
    }
}
