//! The two inference backends and the paper's four Inference APIs.
//!
//! SeMIRT integrates inference frameworks through four functions (paper
//! Fig. 5): `MODEL_LOAD`, `RUNTIME_INIT`, `MODEL_EXEC` and `PREPARE_OUTPUT`.
//! This module implements them for two backends whose memory and latency
//! profiles mirror Apache TVM and TFLM:
//!
//! * [`Framework::Tvm`] — `RUNTIME_INIT` pre-transforms (transposes) every
//!   weight matrix into an execution-friendly layout, so the runtime buffer
//!   holds a full copy of the parameters plus the activation workspace
//!   (Table I: buffer > model), initialization is relatively expensive, and
//!   `MODEL_EXEC` runs the fast transformed kernels.
//! * [`Framework::Tflm`] — `RUNTIME_INIT` only allocates an activation arena
//!   (Table I: buffer ≪ model), and `MODEL_EXEC` interprets the graph
//!   directly from the loaded weights with per-op dispatch overhead.
//!
//! Both backends compute the same function; the unit tests cross-check their
//! outputs against the reference forward pass.

use crate::costs::StageCosts;
use crate::error::InferenceError;
use crate::layers::{softmax_in_place, Layer};
use crate::model::{ModelGraph, ModelId};
use crate::tensor::Matrix;
use crate::zoo::ModelKind;

/// The inference framework a function is built against.
///
/// In the paper this choice is baked into the SeMIRT container image and thus
/// into the enclave identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Framework {
    /// Apache-TVM-like ahead-of-time backend.
    Tvm,
    /// TFLM-like interpreter backend.
    Tflm,
}

impl Framework {
    /// Both frameworks.
    pub const ALL: [Framework; 2] = [Framework::Tvm, Framework::Tflm];

    /// The label used in the paper's figures ("TVM" / "TFLM").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Framework::Tvm => "TVM",
            Framework::Tflm => "TFLM",
        }
    }

    /// `MODEL_LOAD`: deserializes (an already decrypted) model blob into an
    /// in-enclave representation.
    pub fn model_load(
        self,
        model_id: &ModelId,
        bytes: &[u8],
    ) -> Result<LoadedModel, InferenceError> {
        let graph = ModelGraph::from_bytes(bytes)?;
        Ok(LoadedModel {
            id: model_id.clone(),
            framework: self,
            serialized_bytes: bytes.len() as u64,
            graph,
        })
    }

    /// `RUNTIME_INIT`: builds the per-thread model runtime for a loaded
    /// model.
    #[must_use]
    pub fn runtime_init(self, model: &LoadedModel) -> ModelRuntime {
        let arena_len = model.graph.max_activation_width() * 2;
        match self {
            Framework::Tvm => {
                // Pre-transform every dense layer's weights; the transformed
                // copies live in the runtime buffer, which is why TVM's
                // buffer exceeds the model size in Table I.
                let mut transformed = Vec::new();
                collect_transposed(&model.graph.layers, &mut transformed);
                ModelRuntime {
                    model_id: model.id.clone(),
                    framework: self,
                    transformed,
                    arena: vec![0.0; arena_len],
                    executions: 0,
                }
            }
            Framework::Tflm => ModelRuntime {
                model_id: model.id.clone(),
                framework: self,
                transformed: Vec::new(),
                arena: vec![0.0; arena_len],
                executions: 0,
            },
        }
    }

    /// Runtime buffer footprint in bytes for a model of `model_bytes`
    /// parameters and `max_width` activation width — the quantity Fig. 10's
    /// memory-saving ratios are computed from.
    #[must_use]
    pub fn runtime_buffer_bytes(self, model_bytes: u64, max_width: usize) -> u64 {
        let activations = (max_width * 2 * std::mem::size_of::<f32>()) as u64;
        match self {
            // Transformed weight copy + activations + graph metadata.
            Framework::Tvm => model_bytes + activations + model_bytes / 16,
            // Activations + interpreter scratch only.
            Framework::Tflm => activations + activations / 2 + 64 * 1024,
        }
    }

    /// Full-scale runtime buffer size for one of the paper's models
    /// (Table I).
    #[must_use]
    pub fn table1_buffer_bytes(self, kind: ModelKind) -> u64 {
        const MB: u64 = 1024 * 1024;
        match (self, kind) {
            (Framework::Tvm, ModelKind::MbNet) => 30 * MB,
            (Framework::Tvm, ModelKind::RsNet) => 205 * MB,
            (Framework::Tvm, ModelKind::DsNet) => 55 * MB,
            (Framework::Tflm, ModelKind::MbNet) => 5 * MB,
            (Framework::Tflm, ModelKind::RsNet) => 24 * MB,
            (Framework::Tflm, ModelKind::DsNet) => 12 * MB,
        }
    }

    /// The calibrated full-scale stage costs for `(self, kind)` from the
    /// paper's measurements.
    #[must_use]
    pub fn stage_costs(self, kind: ModelKind) -> StageCosts {
        StageCosts::paper_sgx2(kind, self)
    }
}

fn collect_transposed(layers: &[Layer], out: &mut Vec<Matrix>) {
    for layer in layers {
        match layer {
            Layer::Dense { weights, .. } => out.push(weights.transposed()),
            Layer::Residual { branch } | Layer::DenseBlock { branch } => {
                collect_transposed(branch, out);
            }
            Layer::Softmax => {}
        }
    }
}

/// A model deserialized inside the enclave (shared across threads in SeMIRT's
/// plaintext model cache).
#[derive(Clone, Debug)]
pub struct LoadedModel {
    id: ModelId,
    framework: Framework,
    serialized_bytes: u64,
    graph: ModelGraph,
}

impl LoadedModel {
    /// The model id this blob was loaded for.
    #[must_use]
    pub fn id(&self) -> &ModelId {
        &self.id
    }

    /// The framework that loaded the model.
    #[must_use]
    pub fn framework(&self) -> Framework {
        self.framework
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &ModelGraph {
        &self.graph
    }

    /// Size of the serialized blob this model was loaded from (≈ the enclave
    /// memory the decrypted model occupies).
    #[must_use]
    pub fn model_bytes(&self) -> u64 {
        self.serialized_bytes
    }

    /// Runtime buffer footprint this model needs under its framework.
    #[must_use]
    pub fn runtime_buffer_bytes(&self) -> u64 {
        self.framework
            .runtime_buffer_bytes(self.serialized_bytes, self.graph.max_activation_width())
    }
}

/// A per-thread model runtime (`model_rt` in Algorithm 2): activation arena
/// plus, for the TVM-style backend, the transformed weights.
#[derive(Clone, Debug)]
pub struct ModelRuntime {
    model_id: ModelId,
    framework: Framework,
    transformed: Vec<Matrix>,
    arena: Vec<f32>,
    executions: u64,
}

impl ModelRuntime {
    /// The model this runtime was initialized for.
    #[must_use]
    pub fn model_id(&self) -> &ModelId {
        &self.model_id
    }

    /// The framework of this runtime.
    #[must_use]
    pub fn framework(&self) -> Framework {
        self.framework
    }

    /// Number of `MODEL_EXEC` calls served by this runtime.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Whether this runtime matches `model` (SeMIRT re-initializes the
    /// runtime when the thread switches models, Algorithm 2 lines 14–15).
    #[must_use]
    pub fn matches(&self, model: &LoadedModel) -> bool {
        self.model_id == model.id && self.framework == model.framework
    }

    /// `MODEL_EXEC`: runs the model on `input` and returns the class
    /// probabilities.
    pub fn model_exec(
        &mut self,
        model: &LoadedModel,
        input: &[f32],
    ) -> Result<Vec<f32>, InferenceError> {
        if !self.matches(model) {
            return Err(InferenceError::RuntimeModelMismatch);
        }
        if input.len() != model.graph.input_dim {
            return Err(InferenceError::InputDimensionMismatch {
                expected: model.graph.input_dim,
                actual: input.len(),
            });
        }
        self.executions += 1;
        match self.framework {
            Framework::Tvm => {
                let mut dense_index = 0usize;
                Ok(exec_tvm(
                    &model.graph.layers,
                    &self.transformed,
                    &mut dense_index,
                    input.to_vec(),
                ))
            }
            Framework::Tflm => Ok(exec_interpreted(&model.graph.layers, input.to_vec())),
        }
    }

    /// `PREPARE_OUTPUT`: serializes the prediction vector into the byte
    /// buffer that will be encrypted with the request key and returned.
    #[must_use]
    pub fn prepare_output(&self, output: &[f32]) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(4 + output.len() * 4);
        bytes.extend_from_slice(&(output.len() as u32).to_le_bytes());
        for value in output {
            bytes.extend_from_slice(&value.to_le_bytes());
        }
        bytes
    }

    /// Parses a buffer produced by [`ModelRuntime::prepare_output`] (client
    /// side, after decryption).
    pub fn parse_output(bytes: &[u8]) -> Result<Vec<f32>, InferenceError> {
        if bytes.len() < 4 {
            return Err(InferenceError::MalformedModel("output too short".into()));
        }
        let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        if bytes.len() != 4 + count * 4 {
            return Err(InferenceError::MalformedModel(
                "output length mismatch".into(),
            ));
        }
        Ok(bytes[4..]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Clears the activation arena (used by the strong-isolation mode which
    /// wipes per-request state after every invocation, paper §V).
    pub fn clear_arena(&mut self) {
        self.arena.fill(0.0);
    }
}

/// TVM-style execution: consumes the pre-transposed matrices in graph order.
fn exec_tvm(
    layers: &[Layer],
    transformed: &[Matrix],
    dense_index: &mut usize,
    mut activation: Vec<f32>,
) -> Vec<f32> {
    for layer in layers {
        activation = match layer {
            Layer::Dense {
                weights,
                bias,
                activation: act,
            } => {
                let transposed = &transformed[*dense_index];
                *dense_index += 1;
                let mut out = vec![0.0f32; weights.rows()];
                transposed.matvec_transposed_into(&activation, &mut out);
                for (o, b) in out.iter_mut().zip(bias.iter()) {
                    *o += b;
                }
                act.apply(&mut out);
                out
            }
            Layer::Residual { branch } => {
                let branch_out = exec_tvm(branch, transformed, dense_index, activation.clone());
                activation
                    .iter()
                    .zip(branch_out.iter())
                    .map(|(a, b)| a + b)
                    .collect()
            }
            Layer::DenseBlock { branch } => {
                let branch_out = exec_tvm(branch, transformed, dense_index, activation.clone());
                let mut out = activation;
                out.extend(branch_out);
                out
            }
            Layer::Softmax => {
                let mut out = activation;
                softmax_in_place(&mut out);
                out
            }
        };
    }
    activation
}

/// TFLM-style execution: straight interpretation of the row-major weights.
fn exec_interpreted(layers: &[Layer], activation: Vec<f32>) -> Vec<f32> {
    crate::model::run_layers(layers, activation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scaled_model(kind: ModelKind) -> (ModelId, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(11);
        let graph = kind.generate(0.01, &mut rng);
        (kind.default_id(), graph.to_bytes())
    }

    #[test]
    fn framework_labels() {
        assert_eq!(Framework::Tvm.label(), "TVM");
        assert_eq!(Framework::Tflm.label(), "TFLM");
        assert_eq!(Framework::ALL.len(), 2);
    }

    #[test]
    fn both_backends_produce_identical_predictions() {
        for kind in ModelKind::ALL {
            let (id, bytes) = scaled_model(kind);
            let tvm_model = Framework::Tvm.model_load(&id, &bytes).unwrap();
            let tflm_model = Framework::Tflm.model_load(&id, &bytes).unwrap();
            let mut tvm_rt = Framework::Tvm.runtime_init(&tvm_model);
            let mut tflm_rt = Framework::Tflm.runtime_init(&tflm_model);

            let input: Vec<f32> = (0..tvm_model.graph().input_dim)
                .map(|i| ((i * 37 % 17) as f32 - 8.0) * 0.05)
                .collect();
            let tvm_out = tvm_rt.model_exec(&tvm_model, &input).unwrap();
            let tflm_out = tflm_rt.model_exec(&tflm_model, &input).unwrap();
            let reference = tvm_model.graph().forward(&input).unwrap();
            assert_eq!(tvm_out.len(), reference.len());
            for ((a, b), r) in tvm_out.iter().zip(tflm_out.iter()).zip(reference.iter()) {
                assert!((a - b).abs() < 1e-4, "{kind:?}: tvm {a} vs tflm {b}");
                assert!((b - r).abs() < 1e-5, "{kind:?}: tflm {b} vs reference {r}");
            }
        }
    }

    #[test]
    fn runtime_guards_model_and_input_mismatches() {
        let (id, bytes) = scaled_model(ModelKind::MbNet);
        let (other_id, other_bytes) = scaled_model(ModelKind::DsNet);
        let model = Framework::Tvm.model_load(&id, &bytes).unwrap();
        let other = Framework::Tvm.model_load(&other_id, &other_bytes).unwrap();
        let mut rt = Framework::Tvm.runtime_init(&model);

        // Wrong model for this runtime.
        let input = vec![0.0f32; other.graph().input_dim];
        assert!(matches!(
            rt.model_exec(&other, &input),
            Err(InferenceError::RuntimeModelMismatch)
        ));
        // Wrong input width.
        assert!(matches!(
            rt.model_exec(&model, &[0.0; 3]),
            Err(InferenceError::InputDimensionMismatch { .. })
        ));
        assert_eq!(rt.executions(), 0);
        // Correct call succeeds and bumps the counter.
        let input = vec![0.1f32; model.graph().input_dim];
        rt.model_exec(&model, &input).unwrap();
        assert_eq!(rt.executions(), 1);
    }

    #[test]
    fn prepare_and_parse_output_roundtrip() {
        let (id, bytes) = scaled_model(ModelKind::DsNet);
        let model = Framework::Tflm.model_load(&id, &bytes).unwrap();
        let mut rt = Framework::Tflm.runtime_init(&model);
        let input = vec![0.2f32; model.graph().input_dim];
        let output = rt.model_exec(&model, &input).unwrap();
        let serialized = rt.prepare_output(&output);
        let parsed = ModelRuntime::parse_output(&serialized).unwrap();
        assert_eq!(parsed, output);

        assert!(ModelRuntime::parse_output(&serialized[..3]).is_err());
        let mut bad = serialized.clone();
        bad.truncate(serialized.len() - 2);
        assert!(ModelRuntime::parse_output(&bad).is_err());
    }

    #[test]
    fn tvm_buffers_exceed_model_size_and_tflm_buffers_do_not() {
        let (id, bytes) = scaled_model(ModelKind::RsNet);
        let tvm = Framework::Tvm.model_load(&id, &bytes).unwrap();
        let tflm = Framework::Tflm.model_load(&id, &bytes).unwrap();
        assert!(tvm.runtime_buffer_bytes() > tvm.model_bytes());
        assert!(tflm.runtime_buffer_bytes() < tflm.model_bytes());
    }

    #[test]
    fn table1_buffer_sizes_match_the_paper() {
        const MB: u64 = 1024 * 1024;
        assert_eq!(
            Framework::Tvm.table1_buffer_bytes(ModelKind::MbNet),
            30 * MB
        );
        assert_eq!(
            Framework::Tvm.table1_buffer_bytes(ModelKind::RsNet),
            205 * MB
        );
        assert_eq!(
            Framework::Tvm.table1_buffer_bytes(ModelKind::DsNet),
            55 * MB
        );
        assert_eq!(
            Framework::Tflm.table1_buffer_bytes(ModelKind::MbNet),
            5 * MB
        );
        assert_eq!(
            Framework::Tflm.table1_buffer_bytes(ModelKind::RsNet),
            24 * MB
        );
        assert_eq!(
            Framework::Tflm.table1_buffer_bytes(ModelKind::DsNet),
            12 * MB
        );
    }

    #[test]
    fn runtime_matches_checks_framework_too() {
        let (id, bytes) = scaled_model(ModelKind::MbNet);
        let tvm_model = Framework::Tvm.model_load(&id, &bytes).unwrap();
        let tflm_model = Framework::Tflm.model_load(&id, &bytes).unwrap();
        let rt = Framework::Tvm.runtime_init(&tvm_model);
        assert!(rt.matches(&tvm_model));
        assert!(!rt.matches(&tflm_model));
    }

    #[test]
    fn malformed_blob_fails_model_load() {
        let err = Framework::Tvm
            .model_load(&ModelId::new("x"), b"definitely not a model")
            .unwrap_err();
        assert!(matches!(err, InferenceError::MalformedModel(_)));
    }

    #[test]
    fn clear_arena_resets_scratch_space() {
        let (id, bytes) = scaled_model(ModelKind::MbNet);
        let model = Framework::Tflm.model_load(&id, &bytes).unwrap();
        let mut rt = Framework::Tflm.runtime_init(&model);
        let input = vec![0.3f32; model.graph().input_dim];
        rt.model_exec(&model, &input).unwrap();
        rt.clear_arena();
        // Still usable after clearing.
        rt.model_exec(&model, &input).unwrap();
        assert_eq!(rt.executions(), 2);
    }
}
