//! Error type for the inference substrate.

use std::fmt;

/// Errors raised while loading or executing models.
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceError {
    /// The serialized model blob is malformed.
    MalformedModel(String),
    /// The input vector does not match the model's expected input dimension.
    InputDimensionMismatch {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension the caller provided.
        actual: usize,
    },
    /// The runtime was initialized for a different model than the one being
    /// executed (SeMIRT guards against this; the engine double-checks).
    RuntimeModelMismatch,
    /// A layer received an activation of the wrong width (indicates a
    /// corrupted or hand-edited graph).
    ShapeMismatch {
        /// Layer index in the graph.
        layer: usize,
        /// Width the layer expected.
        expected: usize,
        /// Width it received.
        actual: usize,
    },
    /// A numeric value in the model is not finite.
    NonFiniteParameter,
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::MalformedModel(reason) => write!(f, "malformed model: {reason}"),
            InferenceError::InputDimensionMismatch { expected, actual } => write!(
                f,
                "input dimension mismatch: model expects {expected}, got {actual}"
            ),
            InferenceError::RuntimeModelMismatch => {
                write!(f, "runtime was initialized for a different model")
            }
            InferenceError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch at layer {layer}: expected width {expected}, got {actual}"
            ),
            InferenceError::NonFiniteParameter => write!(f, "model contains non-finite parameters"),
        }
    }
}

impl std::error::Error for InferenceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_dimensions() {
        let err = InferenceError::InputDimensionMismatch {
            expected: 64,
            actual: 32,
        };
        assert!(err.to_string().contains("64"));
        assert!(err.to_string().contains("32"));
        let err = InferenceError::ShapeMismatch {
            layer: 3,
            expected: 10,
            actual: 20,
        };
        assert!(err.to_string().contains("layer 3"));
    }
}
