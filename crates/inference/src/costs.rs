//! Calibrated full-scale stage costs per (model, framework) pair.
//!
//! The cluster-scale experiments replay the paper's workloads in simulated
//! time; the duration of each serving stage for the *full-size* models comes
//! from the paper's own measurements:
//!
//! * Fig. 17 — per-stage breakdown inside SGX2 (enclave init, first key
//!   fetch, model load, runtime init, model execution).
//! * Fig. 18 — the same stages outside SGX (untrusted execution).
//! * Table I / Appendix D — model sizes, runtime buffer sizes, and the
//!   enclave memory configured per model/framework.
//!
//! Keeping every constant in one place (and labelling it with its source)
//! makes the calibration auditable: change a constant here and the affected
//! figures in EXPERIMENTS.md change accordingly.

use crate::backend::Framework;
use crate::zoo::ModelKind;
use sesemi_sim::SimDuration;

const MB: u64 = 1024 * 1024;

/// Durations of the serving stages of Fig. 4 for one (model, framework) pair
/// at full model scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageCosts {
    /// Enclave initialization (Fig. 17, "enclave init").
    pub enclave_init: SimDuration,
    /// First key fetch: mutual remote attestation with KeyService plus key
    /// provisioning (Fig. 17, "1st key fetch").
    pub key_fetch: SimDuration,
    /// Loading the encrypted model from storage into the enclave and
    /// decrypting it (Fig. 17, "model load"; storage transfer priced
    /// separately by the platform's storage model).
    pub model_load: SimDuration,
    /// Model runtime initialization (Fig. 17, "runtime init").
    pub runtime_init: SimDuration,
    /// One model execution (Fig. 17, "model execution").
    pub model_exec: SimDuration,
    /// Request decryption plus result encryption inside the enclave
    /// (difference between Fig. 9 hot latency and Fig. 17 execution time).
    pub request_crypto: SimDuration,
}

impl StageCosts {
    /// Total latency of a hot invocation (model and runtime already in the
    /// enclave): execute + request/response crypto.
    #[must_use]
    pub fn hot_total(&self) -> SimDuration {
        self.model_exec + self.request_crypto
    }

    /// Total latency of a warm invocation (enclave and keys cached, but the
    /// model must be loaded and the runtime initialized).
    #[must_use]
    pub fn warm_total(&self) -> SimDuration {
        self.hot_total() + self.model_load + self.runtime_init
    }

    /// Total latency of a cold invocation (everything from enclave creation
    /// onward; sandbox start is accounted by the platform).
    #[must_use]
    pub fn cold_total(&self) -> SimDuration {
        self.warm_total() + self.enclave_init + self.key_fetch
    }

    /// Fraction of [`StageCosts::model_exec`] that is per-dispatch fixed
    /// cost — graph setup, input staging and kernel launch — rather than
    /// per-item arithmetic.  Calibrated against the Fig. 11 concurrency
    /// study's observation that per-request overhead dominates at load, and
    /// in line with the batched-serving literature (a stacked batch pays
    /// the dispatch once and amortizes it across the items).
    pub const BATCH_FIXED_FRACTION: f64 = 0.4;

    /// Execution time of one batched dispatch over `n` stacked inputs.
    ///
    /// The fixed dispatch cost (`BATCH_FIXED_FRACTION · model_exec`) is
    /// paid once per batch; the marginal per-item cost
    /// (`(1 − BATCH_FIXED_FRACTION) · model_exec`) is paid per item.  The
    /// curve is *monotone* in `n` (a wider batch never finishes sooner) and
    /// *sub-linear per item* (`batched(n) / n` strictly decreases), and
    /// `batched(1)` is exactly `model_exec` — the unbatched path prices
    /// identically by construction.
    ///
    /// # Panics
    /// Panics if `n == 0`: an empty batch is never dispatched.
    #[must_use]
    pub fn batched(&self, n: usize) -> SimDuration {
        assert!(n >= 1, "a batch holds at least one request");
        if n == 1 {
            // Bit-identical to the unbatched execution stage: no float
            // round-trip on the path every batching-off run takes.
            return self.model_exec;
        }
        let fixed = Self::BATCH_FIXED_FRACTION;
        self.model_exec.mul_f64(fixed + (1.0 - fixed) * n as f64)
    }

    /// Calibrated SGX2 costs (Fig. 17).
    #[must_use]
    pub fn paper_sgx2(kind: ModelKind, framework: Framework) -> Self {
        let ms = SimDuration::from_millis_f64;
        match (framework, kind) {
            (Framework::Tflm, ModelKind::MbNet) => StageCosts {
                enclave_init: ms(154.0),
                key_fetch: ms(1_040.0),
                model_load: ms(9.44),
                runtime_init: ms(13.2),
                model_exec: ms(747.0),
                request_crypto: ms(4.0),
            },
            (Framework::Tvm, ModelKind::MbNet) => StageCosts {
                enclave_init: ms(192.0),
                key_fetch: ms(1_180.0),
                model_load: ms(11.6),
                runtime_init: ms(25.1),
                model_exec: ms(63.5),
                request_crypto: ms(5.0),
            },
            (Framework::Tflm, ModelKind::RsNet) => StageCosts {
                enclave_init: ms(874.0),
                key_fetch: ms(957.0),
                model_load: ms(76.6),
                runtime_init: ms(104.0),
                model_exec: ms(14_300.0),
                request_crypto: ms(5.0),
            },
            (Framework::Tvm, ModelKind::RsNet) => StageCosts {
                enclave_init: ms(1_300.0),
                key_fetch: ms(888.0),
                model_load: ms(69.6),
                runtime_init: ms(200.0),
                model_exec: ms(938.0),
                request_crypto: ms(6.0),
            },
            (Framework::Tflm, ModelKind::DsNet) => StageCosts {
                enclave_init: ms(270.0),
                key_fetch: ms(1_170.0),
                model_load: ms(26.7),
                runtime_init: ms(31.9),
                model_exec: ms(3_350.0),
                request_crypto: ms(4.0),
            },
            (Framework::Tvm, ModelKind::DsNet) => StageCosts {
                enclave_init: ms(356.0),
                key_fetch: ms(1_220.0),
                model_load: ms(20.4),
                runtime_init: ms(51.0),
                model_exec: ms(339.0),
                request_crypto: ms(5.0),
            },
        }
    }

    /// Calibrated untrusted (no SGX) costs on the same SGX2 machines
    /// (Fig. 18).  `enclave_init`, `key_fetch` and `request_crypto` are zero
    /// because the untrusted baseline performs none of them.
    #[must_use]
    pub fn paper_untrusted(kind: ModelKind, framework: Framework) -> Self {
        let ms = SimDuration::from_millis_f64;
        let zero = SimDuration::ZERO;
        match (framework, kind) {
            (Framework::Tflm, ModelKind::MbNet) => StageCosts {
                enclave_init: zero,
                key_fetch: zero,
                model_load: ms(22.9),
                runtime_init: ms(0.01),
                model_exec: ms(567.0),
                request_crypto: zero,
            },
            (Framework::Tvm, ModelKind::MbNet) => StageCosts {
                enclave_init: zero,
                key_fetch: zero,
                model_load: ms(13.6),
                runtime_init: ms(38.1),
                model_exec: ms(70.0),
                request_crypto: zero,
            },
            (Framework::Tflm, ModelKind::RsNet) => StageCosts {
                enclave_init: zero,
                key_fetch: zero,
                model_load: ms(161.0),
                runtime_init: ms(0.01),
                model_exec: ms(13_600.0),
                request_crypto: zero,
            },
            (Framework::Tvm, ModelKind::RsNet) => StageCosts {
                enclave_init: zero,
                key_fetch: zero,
                model_load: ms(83.4),
                runtime_init: ms(216.0),
                model_exec: ms(945.0),
                request_crypto: zero,
            },
            (Framework::Tflm, ModelKind::DsNet) => StageCosts {
                enclave_init: zero,
                key_fetch: zero,
                model_load: ms(47.9),
                runtime_init: ms(0.02),
                model_exec: ms(3_210.0),
                request_crypto: zero,
            },
            (Framework::Tvm, ModelKind::DsNet) => StageCosts {
                enclave_init: zero,
                key_fetch: zero,
                model_load: ms(21.8),
                runtime_init: ms(67.7),
                model_exec: ms(392.0),
                request_crypto: zero,
            },
        }
    }
}

/// Everything the system needs to know about serving one of the paper's
/// models under one framework at full scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelProfile {
    /// Which paper model.
    pub kind: ModelKind,
    /// Which inference framework.
    pub framework: Framework,
    /// Encrypted/plain model blob size (Table I).
    pub model_bytes: u64,
    /// Per-thread runtime buffer size (Table I).
    pub runtime_buffer_bytes: u64,
    /// Enclave memory configured for the function at concurrency 1
    /// (Appendix D's `HeapMaxSize` values).
    pub enclave_bytes: u64,
    /// Serving-stage durations inside SGX2 (Fig. 17).
    pub sgx2: StageCosts,
    /// Serving-stage durations outside SGX (Fig. 18).
    pub untrusted: StageCosts,
}

impl ModelProfile {
    /// Builds the calibrated profile for a (model, framework) pair.
    #[must_use]
    pub fn paper(kind: ModelKind, framework: Framework) -> Self {
        let enclave_bytes = match (framework, kind) {
            // Appendix D memory configurations (hex values from the paper).
            (Framework::Tflm, ModelKind::MbNet) => 0x0300_0000, // 48 MB
            (Framework::Tvm, ModelKind::MbNet) => 0x0400_0000,  // 64 MB
            (Framework::Tflm, ModelKind::RsNet) => 0x1600_0000, // 352 MB
            (Framework::Tvm, ModelKind::RsNet) => 0x2300_0000,  // 560 MB
            (Framework::Tflm, ModelKind::DsNet) => 0x0600_0000, // 96 MB
            (Framework::Tvm, ModelKind::DsNet) => 0x0800_0000,  // 128 MB
        };
        ModelProfile {
            kind,
            framework,
            model_bytes: kind.full_model_bytes(),
            runtime_buffer_bytes: framework.table1_buffer_bytes(kind),
            enclave_bytes,
            sgx2: StageCosts::paper_sgx2(kind, framework),
            untrusted: StageCosts::paper_untrusted(kind, framework),
        }
    }

    /// All six (model, framework) profiles evaluated in the paper.
    #[must_use]
    pub fn all_paper_profiles() -> Vec<ModelProfile> {
        let mut out = Vec::with_capacity(6);
        for framework in Framework::ALL {
            for kind in ModelKind::ALL {
                out.push(ModelProfile::paper(kind, framework));
            }
        }
        out
    }

    /// λ = runtime buffer size / model size (Fig. 10's caption parameter).
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.runtime_buffer_bytes as f64 / self.model_bytes as f64
    }

    /// Enclave memory needed to serve `concurrency` threads in one enclave:
    /// one shared model buffer (plus its encrypted copy during loading) and a
    /// per-thread runtime buffer (paper §IV-B and Appendix D).
    #[must_use]
    pub fn enclave_bytes_for_concurrency(&self, concurrency: usize) -> u64 {
        assert!(concurrency >= 1);
        // Shared: decrypted model + transient encrypted copy + code/stack slack.
        let shared = self.model_bytes * 2 + 16 * MB;
        shared + self.runtime_buffer_bytes * concurrency as u64
    }

    /// Per-thread runtime buffer scaled to batch width: a thread executing
    /// a stacked batch of `n` inputs holds `n` items' intermediate tensors
    /// at once, so the buffer grows linearly with the batch — the model
    /// buffer stays shared (batching widens the activation working set,
    /// never the weights).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn batch_runtime_buffer_bytes(&self, n: usize) -> u64 {
        assert!(n >= 1, "a batch holds at least one request");
        self.runtime_buffer_bytes * n as u64
    }

    /// Peak memory if each of `n` requests were served by its *own* enclave —
    /// the baseline Fig. 10 compares against.
    #[must_use]
    pub fn per_request_enclave_bytes(&self, n: usize) -> u64 {
        self.enclave_bytes_for_concurrency(1) * n as u64
    }

    /// Memory-saving ratio of serving `n` concurrent requests in one enclave
    /// versus `n` single-request enclaves (Fig. 10).
    #[must_use]
    pub fn memory_saving_ratio(&self, n: usize) -> f64 {
        let shared = self.enclave_bytes_for_concurrency(n) as f64;
        let isolated = self.per_request_enclave_bytes(n) as f64;
        1.0 - shared / isolated
    }

    /// Identifier string like `"TVM-RSNET"` used in experiment output.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}-{}", self.framework.label(), self.kind.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_warm_cold_totals_reproduce_fig9_ordering() {
        for profile in ModelProfile::all_paper_profiles() {
            let costs = profile.sgx2;
            assert!(costs.hot_total() < costs.warm_total());
            assert!(costs.warm_total() < costs.cold_total());
        }
    }

    #[test]
    fn fig9_tvm_mbnet_hot_vs_cold_speedup_is_about_21x() {
        // §VI-A: "for the MBNET model running with TVM, a hot invocation can
        // achieve up to 21× speedup over a cold invocation, whereas a warm
        // invocation achieves a 11× speedup".
        let costs = StageCosts::paper_sgx2(ModelKind::MbNet, Framework::Tvm);
        let hot_speedup = costs.cold_total().as_secs_f64() / costs.hot_total().as_secs_f64();
        let warm_speedup = costs.cold_total().as_secs_f64() / costs.warm_total().as_secs_f64();
        assert!(
            (15.0..27.0).contains(&hot_speedup),
            "hot speedup {hot_speedup:.1}"
        );
        assert!(
            (8.0..15.0).contains(&warm_speedup),
            "warm speedup {warm_speedup:.1}"
        );
    }

    #[test]
    fn fig9_hot_latencies_match_paper_numbers() {
        // Paper Fig. 9 hot-path latencies (seconds).
        let expectations = [
            (Framework::Tflm, ModelKind::MbNet, 0.75),
            (Framework::Tvm, ModelKind::MbNet, 0.07),
            (Framework::Tflm, ModelKind::RsNet, 14.28),
            (Framework::Tvm, ModelKind::RsNet, 0.94),
            (Framework::Tflm, ModelKind::DsNet, 3.35),
            (Framework::Tvm, ModelKind::DsNet, 0.38),
        ];
        for (framework, kind, expected) in expectations {
            let hot = StageCosts::paper_sgx2(kind, framework)
                .hot_total()
                .as_secs_f64();
            let ratio = hot / expected;
            assert!(
                (0.9..1.12).contains(&ratio),
                "{}-{} hot {hot:.3}s vs paper {expected}s",
                framework.label(),
                kind.label()
            );
        }
    }

    #[test]
    fn tvm_runtime_init_fraction_of_exec_matches_section_6a() {
        // §VI-A: runtime initialization adds 39.6%, 21.3%, 15.0% of the model
        // execution time for MBNET, RSNET, DSNET under TVM.
        let cases = [
            (ModelKind::MbNet, 0.396),
            (ModelKind::RsNet, 0.213),
            (ModelKind::DsNet, 0.150),
        ];
        for (kind, expected) in cases {
            let costs = StageCosts::paper_sgx2(kind, Framework::Tvm);
            let fraction = costs.runtime_init.as_secs_f64() / costs.model_exec.as_secs_f64();
            assert!(
                (fraction - expected).abs() < 0.02,
                "{}: fraction {fraction:.3} vs {expected}",
                kind.label()
            );
        }
    }

    #[test]
    fn profiles_report_table1_sizes_and_lambda() {
        let tvm_mbnet = ModelProfile::paper(ModelKind::MbNet, Framework::Tvm);
        assert_eq!(tvm_mbnet.model_bytes, 17 * MB);
        assert_eq!(tvm_mbnet.runtime_buffer_bytes, 30 * MB);
        assert!((tvm_mbnet.lambda() - 30.0 / 17.0).abs() < 1e-9);
        assert_eq!(tvm_mbnet.enclave_bytes, 64 * MB);

        let tflm_rsnet = ModelProfile::paper(ModelKind::RsNet, Framework::Tflm);
        assert_eq!(tflm_rsnet.enclave_bytes, 352 * MB);
        assert!(tflm_rsnet.lambda() < 0.2);
        assert_eq!(ModelProfile::all_paper_profiles().len(), 6);
    }

    #[test]
    fn memory_saving_grows_with_concurrency_and_is_larger_for_tflm() {
        for framework in Framework::ALL {
            for kind in ModelKind::ALL {
                let profile = ModelProfile::paper(kind, framework);
                let s2 = profile.memory_saving_ratio(2);
                let s4 = profile.memory_saving_ratio(4);
                let s8 = profile.memory_saving_ratio(8);
                assert!(s2 < s4 && s4 < s8, "{}: {s2} {s4} {s8}", profile.label());
                assert!(s8 < 1.0 && s2 > 0.0);
            }
        }
        // Fig. 10: TFLM saves more than TVM because its runtime buffer holds
        // only intermediate data.  Peak saving ~86% for RSNET/TFLM at 8.
        let tflm = ModelProfile::paper(ModelKind::RsNet, Framework::Tflm).memory_saving_ratio(8);
        let tvm = ModelProfile::paper(ModelKind::RsNet, Framework::Tvm).memory_saving_ratio(8);
        assert!(tflm > tvm);
        assert!((0.75..0.95).contains(&tflm), "tflm saving {tflm:.2}");
    }

    #[test]
    fn untrusted_execution_is_comparable_to_hot_invocation() {
        // Fig. 9's observation: hot-path cost is comparable to untrusted
        // execution with a cached model, because model execution dominates.
        for profile in ModelProfile::all_paper_profiles() {
            let hot = profile.sgx2.hot_total().as_secs_f64();
            let untrusted_exec = profile.untrusted.model_exec.as_secs_f64();
            let ratio = hot / untrusted_exec;
            assert!(
                (0.7..1.5).contains(&ratio),
                "{}: hot {hot:.3}s vs untrusted exec {untrusted_exec:.3}s",
                profile.label()
            );
        }
    }

    #[test]
    fn batched_exec_of_one_is_exactly_the_unbatched_stage() {
        // The seam guarantee: a batch of one prices bit-identically to
        // `model_exec`, so batching-off runs reproduce the pinned goldens.
        for profile in ModelProfile::all_paper_profiles() {
            assert_eq!(profile.sgx2.batched(1), profile.sgx2.model_exec);
            assert_eq!(profile.untrusted.batched(1), profile.untrusted.model_exec);
        }
    }

    #[test]
    fn batched_exec_is_monotone_and_sublinear_per_item() {
        for profile in ModelProfile::all_paper_profiles() {
            let costs = profile.sgx2;
            for n in 2..=16usize {
                let wider = costs.batched(n);
                let narrower = costs.batched(n - 1);
                // Monotone: a wider batch never finishes sooner.
                assert!(wider > narrower, "{}: batched({n})", profile.label());
                // Sub-linear per item: amortization strictly improves.
                let per_item = wider.as_secs_f64() / n as f64;
                let prev_per_item = narrower.as_secs_f64() / (n - 1) as f64;
                assert!(
                    per_item < prev_per_item,
                    "{}: per-item cost must fall at n={n}",
                    profile.label()
                );
                // And a batch always beats n sequential dispatches.
                assert!(wider < costs.model_exec.mul_f64(n as f64));
            }
        }
    }

    #[test]
    fn batch_cost_curve_is_pinned() {
        // Pin the calibration: fixed fraction 0.4 means a batch of 8 costs
        // 0.4 + 0.6·8 = 5.2× one dispatch (the paper-scale TVM-MBNET exec
        // is 63.5 ms, so the batch runs 330.2 ms — 41.3 ms per item versus
        // 63.5 ms unbatched).
        let costs = StageCosts::paper_sgx2(ModelKind::MbNet, Framework::Tvm);
        let batch8 = costs.batched(8);
        let expected = costs.model_exec.mul_f64(5.2);
        assert!(
            (batch8.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-9,
            "batched(8) {batch8} vs expected {expected}"
        );
        assert!((StageCosts::BATCH_FIXED_FRACTION - 0.4).abs() < f64::EPSILON);
    }

    #[test]
    fn batch_width_scales_the_runtime_buffer_linearly() {
        let profile = ModelProfile::paper(ModelKind::MbNet, Framework::Tvm);
        assert_eq!(
            profile.batch_runtime_buffer_bytes(1),
            profile.runtime_buffer_bytes
        );
        assert_eq!(
            profile.batch_runtime_buffer_bytes(4),
            profile.runtime_buffer_bytes * 4
        );
    }

    #[test]
    fn labels_are_framework_model() {
        assert_eq!(
            ModelProfile::paper(ModelKind::RsNet, Framework::Tvm).label(),
            "TVM-RSNET"
        );
    }
}
