//! Minimal dense tensor types: a 1-D activation vector and a 2-D weight
//! matrix in row-major layout, plus the matrix–vector kernels both backends
//! build on.

use crate::error::InferenceError;

/// A dense 2-D matrix of `f32` in row-major order (`rows` × `cols`).
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major backing slice.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Element accessor (row, col).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.cols + col]
    }

    /// Mutable element accessor (row, col).
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        self.data[row * self.cols + col] = value;
    }

    /// Number of parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of the parameters in bytes (`f32` elements).
    #[must_use]
    pub fn byte_len(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Returns the transpose (used by the TVM-style backend's weight
    /// pre-transformation).
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Checks that every parameter is finite.
    pub fn validate_finite(&self) -> Result<(), InferenceError> {
        if self.data.iter().all(|x| x.is_finite()) {
            Ok(())
        } else {
            Err(InferenceError::NonFiniteParameter)
        }
    }

    /// `y = W · x` where the matrix is `rows × cols` and `x` has length
    /// `cols`.  Writes into `out` (length `rows`).  This is the hot kernel of
    /// the TFLM-style interpreter (row-major weights, gather per row).
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(out.len(), self.rows);
        for (r, out_val) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            *out_val = acc;
        }
    }

    /// `y = Wᵀ · x` computed from an already-transposed matrix (`cols × rows`
    /// of the logical weight): iterating columns of the transposed layout is
    /// the cache-friendlier access pattern the TVM-style backend pre-pays
    /// `RUNTIME_INIT` time for.
    pub fn matvec_transposed_into(&self, x: &[f32], out: &mut [f32]) {
        // Here `self` is the transposed weight: shape (in_dim x out_dim).
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(out.len(), self.cols);
        out.fill(0.0);
        for (k, xi) in x.iter().enumerate() {
            if *xi == 0.0 {
                continue;
            }
            let row = &self.data[k * self.cols..(k + 1) * self.cols];
            for (o, w) in out.iter_mut().zip(row.iter()) {
                *o += xi * w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(m.byte_len(), 24);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_data_length_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, -1.0];
        let mut out = [0.0; 2];
        m.matvec_into(&x, &mut out);
        assert_eq!(out, [1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn transposed_matvec_agrees_with_row_major() {
        let m = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32 * 0.5 - 2.0).collect());
        let x = [0.3, -1.2, 2.0, 0.7];
        let mut direct = [0.0f32; 3];
        m.matvec_into(&x, &mut direct);
        let mut via_transpose = [0.0f32; 3];
        m.transposed()
            .matvec_transposed_into(&x, &mut via_transpose);
        for (a, b) in direct.iter().zip(via_transpose.iter()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn validate_finite_detects_nan_and_inf() {
        let good = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        assert!(good.validate_finite().is_ok());
        let nan = Matrix::from_vec(1, 2, vec![1.0, f32::NAN]);
        assert!(nan.validate_finite().is_err());
        let inf = Matrix::from_vec(1, 2, vec![f32::INFINITY, 0.0]);
        assert!(inf.validate_finite().is_err());
    }

    #[test]
    fn transpose_is_involutive() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.transposed().transposed(), m);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matvec_implementations_agree(
            rows in 1usize..8,
            cols in 1usize..8,
            seed in 0u64..1000,
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0
            };
            let m = Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect());
            let x: Vec<f32> = (0..cols).map(|_| next()).collect();
            let mut a = vec![0.0; rows];
            let mut b = vec![0.0; rows];
            m.matvec_into(&x, &mut a);
            m.transposed().matvec_transposed_into(&x, &mut b);
            for (p, q) in a.iter().zip(b.iter()) {
                prop_assert!((p - q).abs() < 1e-4);
            }
        }
    }
}
