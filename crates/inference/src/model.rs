//! Model graphs, identities and the serialized model format.
//!
//! Models are what the model owner encrypts and uploads to cloud storage
//! (paper §III, step 2).  The serialized format here plays the role of the
//! TVM/TFLM model artifacts: a self-describing binary blob that the enclave
//! deserializes after decryption.

use crate::error::InferenceError;
use crate::layers::{output_dim_of, softmax_in_place, Activation, Layer};
use crate::tensor::Matrix;
use std::fmt;

/// Magic bytes at the start of every serialized model.
const MAGIC: &[u8; 8] = b"SESEMIMD";
/// Serialization format version.
const FORMAT_VERSION: u32 = 1;

/// A model identifier (`M_oid` in the paper) — chosen by the model owner and
/// used as the routing / access-control key throughout the system.  Model ids
/// are public information (FnPacker routes on them), only the parameters are
/// confidential.
///
/// The id is interned behind an `Arc<str>`: the simulator clones model ids on
/// nearly every dispatch decision, and a refcount bump is what keeps those
/// clones off the allocator.  Comparison, hashing and ordering all delegate
/// to the underlying `str`, so maps and sorts behave exactly as they did when
/// the inner type was `String`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(std::sync::Arc<str>);

impl ModelId {
    /// Creates a model id.
    #[must_use]
    pub fn new(id: impl Into<String>) -> Self {
        ModelId(id.into().into())
    }

    /// String form of the id.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModelId({})", self.0)
    }
}

impl From<&str> for ModelId {
    fn from(value: &str) -> Self {
        ModelId::new(value)
    }
}

/// A feed-forward model graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelGraph {
    /// Human-readable model name (e.g. `"mobilenet-v1"`).
    pub name: String,
    /// Width of the input feature vector.
    pub input_dim: usize,
    /// The layer stack.
    pub layers: Vec<Layer>,
}

impl ModelGraph {
    /// Creates a graph after validating its shapes and parameters.
    pub fn new(
        name: impl Into<String>,
        input_dim: usize,
        layers: Vec<Layer>,
    ) -> Result<Self, InferenceError> {
        let graph = ModelGraph {
            name: name.into(),
            input_dim,
            layers,
        };
        graph.validate()?;
        Ok(graph)
    }

    /// Validates shape consistency and parameter finiteness.
    pub fn validate(&self) -> Result<(), InferenceError> {
        if self.input_dim == 0 {
            return Err(InferenceError::MalformedModel(
                "input dimension must be positive".to_string(),
            ));
        }
        output_dim_of(&self.layers, self.input_dim, 0)?;
        self.layers.iter().try_for_each(Layer::validate)
    }

    /// Output width of the model.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        output_dim_of(&self.layers, self.input_dim, 0).expect("graph validated at construction")
    }

    /// Total number of `f32` parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Layer::parameter_count).sum()
    }

    /// Size of the parameters in bytes.
    #[must_use]
    pub fn parameter_bytes(&self) -> u64 {
        (self.parameter_count() * std::mem::size_of::<f32>()) as u64
    }

    /// Total number of primitive ops (for the interpreter's dispatch cost).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.layers.iter().map(Layer::op_count).sum()
    }

    /// The widest intermediate activation produced while running the model;
    /// determines the size of the TFLM-style arena.
    #[must_use]
    pub fn max_activation_width(&self) -> usize {
        fn walk(layers: &[Layer], input_dim: usize, widest: &mut usize) -> usize {
            let mut dim = input_dim;
            for layer in layers {
                match layer {
                    Layer::Dense { weights, .. } => {
                        dim = weights.rows();
                    }
                    Layer::Residual { branch } => {
                        walk(branch, dim, widest);
                        // output width unchanged
                    }
                    Layer::DenseBlock { branch } => {
                        let branch_out = walk(branch, dim, widest);
                        dim += branch_out;
                    }
                    Layer::Softmax => {}
                }
                *widest = (*widest).max(dim);
            }
            dim
        }
        let mut widest = self.input_dim;
        walk(&self.layers, self.input_dim, &mut widest);
        widest
    }

    /// Reference forward pass (the backends implement their own execution
    /// paths; this one exists for correctness cross-checks).
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, InferenceError> {
        if input.len() != self.input_dim {
            return Err(InferenceError::InputDimensionMismatch {
                expected: self.input_dim,
                actual: input.len(),
            });
        }
        Ok(run_layers(&self.layers, input.to_vec()))
    }

    /// Serializes the model into the SeSeMI binary model format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.parameter_count() * 4 + 256);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        write_string(&mut out, &self.name);
        out.extend_from_slice(&(self.input_dim as u64).to_le_bytes());
        out.extend_from_slice(&(self.layers.len() as u32).to_le_bytes());
        for layer in &self.layers {
            write_layer(&mut out, layer);
        }
        out
    }

    /// Parses a model from the binary format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, InferenceError> {
        let mut cursor = Cursor::new(bytes);
        let magic = cursor.take(8)?;
        if magic != MAGIC {
            return Err(InferenceError::MalformedModel("bad magic".to_string()));
        }
        let version = cursor.read_u32()?;
        if version != FORMAT_VERSION {
            return Err(InferenceError::MalformedModel(format!(
                "unsupported format version {version}"
            )));
        }
        let name = cursor.read_string()?;
        let input_dim = cursor.read_u64()? as usize;
        let layer_count = cursor.read_u32()? as usize;
        if layer_count > 1_000_000 {
            return Err(InferenceError::MalformedModel(
                "unreasonable layer count".to_string(),
            ));
        }
        let mut layers = Vec::with_capacity(layer_count);
        for _ in 0..layer_count {
            layers.push(read_layer(&mut cursor, 0)?);
        }
        if !cursor.is_exhausted() {
            return Err(InferenceError::MalformedModel(
                "trailing bytes after model".to_string(),
            ));
        }
        ModelGraph::new(name, input_dim, layers)
    }
}

/// Runs a layer sequence on an owned activation vector.
pub(crate) fn run_layers(layers: &[Layer], mut activation: Vec<f32>) -> Vec<f32> {
    for layer in layers {
        activation = run_layer(layer, activation);
    }
    activation
}

fn run_layer(layer: &Layer, activation: Vec<f32>) -> Vec<f32> {
    match layer {
        Layer::Dense {
            weights,
            bias,
            activation: act,
        } => {
            let mut out = vec![0.0f32; weights.rows()];
            weights.matvec_into(&activation, &mut out);
            for (o, b) in out.iter_mut().zip(bias.iter()) {
                *o += b;
            }
            act.apply(&mut out);
            out
        }
        Layer::Residual { branch } => {
            let branch_out = run_layers(branch, activation.clone());
            activation
                .iter()
                .zip(branch_out.iter())
                .map(|(a, b)| a + b)
                .collect()
        }
        Layer::DenseBlock { branch } => {
            let branch_out = run_layers(branch, activation.clone());
            let mut out = activation;
            out.extend(branch_out);
            out
        }
        Layer::Softmax => {
            let mut out = activation;
            softmax_in_place(&mut out);
            out
        }
    }
}

// --- serialization helpers -------------------------------------------------

fn write_string(out: &mut Vec<u8>, value: &str) {
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
}

fn write_layer(out: &mut Vec<u8>, layer: &Layer) {
    match layer {
        Layer::Dense {
            weights,
            bias,
            activation,
        } => {
            out.push(0);
            out.extend_from_slice(&(weights.rows() as u32).to_le_bytes());
            out.extend_from_slice(&(weights.cols() as u32).to_le_bytes());
            out.push(activation.tag());
            for w in weights.data() {
                out.extend_from_slice(&w.to_le_bytes());
            }
            for b in bias {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        Layer::Residual { branch } => {
            out.push(1);
            out.extend_from_slice(&(branch.len() as u32).to_le_bytes());
            for inner in branch {
                write_layer(out, inner);
            }
        }
        Layer::DenseBlock { branch } => {
            out.push(2);
            out.extend_from_slice(&(branch.len() as u32).to_le_bytes());
            for inner in branch {
                write_layer(out, inner);
            }
        }
        Layer::Softmax => out.push(3),
    }
}

const MAX_LAYER_NESTING: usize = 16;

fn read_layer(cursor: &mut Cursor<'_>, depth: usize) -> Result<Layer, InferenceError> {
    if depth > MAX_LAYER_NESTING {
        return Err(InferenceError::MalformedModel(
            "layer nesting too deep".to_string(),
        ));
    }
    let tag = cursor.read_u8()?;
    match tag {
        0 => {
            let rows = cursor.read_u32()? as usize;
            let cols = cursor.read_u32()? as usize;
            let activation = Activation::from_tag(cursor.read_u8()?)?;
            let count = rows.checked_mul(cols).ok_or_else(|| {
                InferenceError::MalformedModel("weight matrix too large".to_string())
            })?;
            let mut data = Vec::with_capacity(count);
            for _ in 0..count {
                data.push(cursor.read_f32()?);
            }
            let mut bias = Vec::with_capacity(rows);
            for _ in 0..rows {
                bias.push(cursor.read_f32()?);
            }
            Ok(Layer::Dense {
                weights: Matrix::from_vec(rows, cols, data),
                bias,
                activation,
            })
        }
        1 | 2 => {
            let count = cursor.read_u32()? as usize;
            if count > 10_000 {
                return Err(InferenceError::MalformedModel(
                    "unreasonable branch length".to_string(),
                ));
            }
            let mut branch = Vec::with_capacity(count);
            for _ in 0..count {
                branch.push(read_layer(cursor, depth + 1)?);
            }
            if tag == 1 {
                Ok(Layer::Residual { branch })
            } else {
                Ok(Layer::DenseBlock { branch })
            }
        }
        3 => Ok(Layer::Softmax),
        other => Err(InferenceError::MalformedModel(format!(
            "unknown layer tag {other}"
        ))),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, offset: 0 }
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], InferenceError> {
        if self.offset + len > self.bytes.len() {
            return Err(InferenceError::MalformedModel(
                "truncated model".to_string(),
            ));
        }
        let slice = &self.bytes[self.offset..self.offset + len];
        self.offset += len;
        Ok(slice)
    }

    fn read_u8(&mut self) -> Result<u8, InferenceError> {
        Ok(self.take(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, InferenceError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn read_u64(&mut self) -> Result<u64, InferenceError> {
        let bytes = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    fn read_f32(&mut self) -> Result<f32, InferenceError> {
        let bytes = self.take(4)?;
        Ok(f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn read_string(&mut self) -> Result<String, InferenceError> {
        let len = self.read_u32()? as usize;
        if len > 4096 {
            return Err(InferenceError::MalformedModel("name too long".to_string()));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| InferenceError::MalformedModel("name is not utf-8".to_string()))
    }

    fn is_exhausted(&self) -> bool {
        self.offset == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_model() -> ModelGraph {
        let dense = |rows: usize, cols: usize, scale: f32| Layer::Dense {
            weights: Matrix::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|i| (i as f32 * 0.013 - 0.3) * scale)
                    .collect(),
            ),
            bias: (0..rows).map(|i| i as f32 * 0.01).collect(),
            activation: Activation::Relu,
        };
        ModelGraph::new(
            "test-net",
            8,
            vec![
                dense(16, 8, 0.5),
                Layer::Residual {
                    branch: vec![dense(16, 16, 0.2)],
                },
                Layer::DenseBlock {
                    branch: vec![dense(4, 16, 0.3)],
                },
                dense(3, 20, 0.4),
                Layer::Softmax,
            ],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_counts() {
        let model = small_model();
        assert_eq!(model.output_dim(), 3);
        assert_eq!(model.max_activation_width(), 20);
        assert!(model.parameter_count() > 0);
        assert_eq!(model.parameter_bytes(), model.parameter_count() as u64 * 4);
        assert!(model.op_count() >= 8);
    }

    #[test]
    fn forward_produces_probability_distribution() {
        let model = small_model();
        let input: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let output = model.forward(&input).unwrap();
        assert_eq!(output.len(), 3);
        let sum: f32 = output.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(output.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn forward_rejects_wrong_input_dim() {
        let model = small_model();
        assert!(matches!(
            model.forward(&[0.0; 5]),
            Err(InferenceError::InputDimensionMismatch {
                expected: 8,
                actual: 5
            })
        ));
    }

    #[test]
    fn serialization_roundtrip_preserves_model_and_outputs() {
        let model = small_model();
        let bytes = model.to_bytes();
        assert_eq!(&bytes[..8], MAGIC);
        let restored = ModelGraph::from_bytes(&bytes).unwrap();
        assert_eq!(restored, model);
        let input: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
        assert_eq!(
            model.forward(&input).unwrap(),
            restored.forward(&input).unwrap()
        );
    }

    #[test]
    fn malformed_blobs_are_rejected() {
        let model = small_model();
        let bytes = model.to_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(ModelGraph::from_bytes(&bad).is_err());

        // Truncated.
        assert!(ModelGraph::from_bytes(&bytes[..bytes.len() / 2]).is_err());

        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0u8; 4]);
        assert!(ModelGraph::from_bytes(&trailing).is_err());

        // Unknown version.
        let mut versioned = bytes;
        versioned[8] = 0xFF;
        assert!(ModelGraph::from_bytes(&versioned).is_err());

        // Empty input.
        assert!(ModelGraph::from_bytes(&[]).is_err());
    }

    #[test]
    fn zero_input_dim_is_rejected() {
        assert!(ModelGraph::new("bad", 0, vec![Layer::Softmax]).is_err());
    }

    #[test]
    fn model_id_display_and_conversion() {
        let id: ModelId = "hospital/diagnosis-v2".into();
        assert_eq!(id.as_str(), "hospital/diagnosis-v2");
        assert_eq!(id.to_string(), "hospital/diagnosis-v2");
        assert!(format!("{id:?}").contains("hospital"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn roundtrip_random_small_models(
            input_dim in 1usize..6,
            hidden in 1usize..6,
            outputs in 1usize..4,
            seed in 0u64..500,
        ) {
            let mut state = seed.wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            };
            let l1 = Layer::Dense {
                weights: Matrix::from_vec(hidden, input_dim, (0..hidden * input_dim).map(|_| next()).collect()),
                bias: (0..hidden).map(|_| next()).collect(),
                activation: Activation::Relu,
            };
            let l2 = Layer::Dense {
                weights: Matrix::from_vec(outputs, hidden, (0..outputs * hidden).map(|_| next()).collect()),
                bias: (0..outputs).map(|_| next()).collect(),
                activation: Activation::None,
            };
            let model = ModelGraph::new("prop", input_dim, vec![l1, l2, Layer::Softmax]).unwrap();
            let restored = ModelGraph::from_bytes(&model.to_bytes()).unwrap();
            prop_assert_eq!(restored, model);
        }
    }
}
