//! # sesemi-inference
//!
//! The model-inference substrate of the SeSeMI reproduction.  The paper runs
//! three image models (MobileNetV1, ResNet101, DenseNet121) under two
//! inference frameworks (Apache TVM and TensorFlow Lite Micro).  Neither
//! framework is available here, so this crate implements a small but real
//! neural-network engine with two backends that reproduce the *properties*
//! the paper's evaluation depends on:
//!
//! * **`Tvm`** (ahead-of-time style): `RUNTIME_INIT` materializes a
//!   transformed copy of every weight matrix, so the runtime buffer is larger
//!   than the model itself (Table I: 30/205/55 MB for models of 17/170/44
//!   MB), runtime initialization is expensive, and execution is fast.
//! * **`Tflm`** (interpreter style): the runtime allocates only an arena for
//!   intermediate activations (Table I: 5/24/12 MB), initialization is cheap,
//!   and execution is slower because every operation goes through interpreter
//!   dispatch.
//!
//! Both backends execute the same [`model::ModelGraph`]s and produce the same
//! predictions — only their memory and latency profiles differ — which gives
//! the higher layers a faithful stand-in for "two inference frameworks".
//!
//! The [`zoo`] module generates synthetic MBNET/RSNET/DSNET-shaped graphs at
//! any scale: unit tests and examples run scaled-down versions for real,
//! while the cluster simulator uses the calibrated full-size stage durations
//! in [`costs`] (taken from the paper's Figs. 17/18 and Table I).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod costs;
pub mod error;
pub mod layers;
pub mod model;
pub mod tensor;
pub mod zoo;

pub use backend::{Framework, LoadedModel, ModelRuntime};
pub use costs::{ModelProfile, StageCosts};
pub use error::InferenceError;
pub use model::{ModelGraph, ModelId};
pub use zoo::ModelKind;
