//! The model zoo: synthetic stand-ins for the paper's three evaluation
//! models, generated at any scale.
//!
//! | Paper model        | Size   | Motif                            | Zoo generator |
//! |--------------------|--------|----------------------------------|---------------|
//! | MobileNetV1 (MBNET)| 17 MB  | plain separable-conv stack       | [`ModelKind::MbNet`] |
//! | ResNet101 (RSNET)  | 170 MB | residual blocks                  | [`ModelKind::RsNet`] |
//! | DenseNet121 (DSNET)| 44 MB  | densely-connected blocks         | [`ModelKind::DsNet`] |
//!
//! `scale = 1.0` produces graphs whose parameter footprint matches the
//! paper's model sizes (±5 %); tests and examples use small scales (e.g.
//! 0.01) so the real math stays fast, while the simulator uses the calibrated
//! full-size costs from [`crate::costs`].

use crate::layers::{Activation, Layer};
use crate::model::{ModelGraph, ModelId};
use crate::tensor::Matrix;
use rand::RngCore;

/// Which of the paper's three models to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// MobileNetV1 — 17 MB of parameters.
    MbNet,
    /// ResNet101 v2 — 170 MB of parameters.
    RsNet,
    /// DenseNet121 — 44 MB of parameters.
    DsNet,
}

impl ModelKind {
    /// All three paper models.
    pub const ALL: [ModelKind; 3] = [ModelKind::MbNet, ModelKind::RsNet, ModelKind::DsNet];

    /// The short name used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::MbNet => "MBNET",
            ModelKind::RsNet => "RSNET",
            ModelKind::DsNet => "DSNET",
        }
    }

    /// Full-scale parameter footprint in bytes (Table I).
    #[must_use]
    pub fn full_model_bytes(self) -> u64 {
        match self {
            ModelKind::MbNet => 17 * 1024 * 1024,
            ModelKind::RsNet => 170 * 1024 * 1024,
            ModelKind::DsNet => 44 * 1024 * 1024,
        }
    }

    /// Default [`ModelId`] used in examples and experiments.
    #[must_use]
    pub fn default_id(self) -> ModelId {
        ModelId::new(match self {
            ModelKind::MbNet => "mbnet",
            ModelKind::RsNet => "rsnet",
            ModelKind::DsNet => "dsnet",
        })
    }

    /// Number of output classes the generated classifier has.
    #[must_use]
    pub fn num_classes(self) -> usize {
        match self {
            ModelKind::MbNet => 10,
            ModelKind::RsNet => 16,
            ModelKind::DsNet => 12,
        }
    }

    /// Generates the synthetic model at the given scale with weights drawn
    /// from `rng`.
    ///
    /// `scale` controls the width of the hidden layers; `scale = 1.0` yields
    /// a parameter footprint close to the paper's model size.  Values in
    /// `(0, 1]` are accepted; tests use `0.01`–`0.05`.
    pub fn generate<R: RngCore>(self, scale: f64, rng: &mut R) -> ModelGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let builder = ZooBuilder::new(rng);
        match self {
            ModelKind::MbNet => builder.mobilenet(scale, self.num_classes()),
            ModelKind::RsNet => builder.resnet(scale, self.num_classes()),
            ModelKind::DsNet => builder.densenet(scale, self.num_classes()),
        }
    }
}

struct ZooBuilder<'a, R: RngCore> {
    rng: &'a mut R,
}

impl<'a, R: RngCore> ZooBuilder<'a, R> {
    fn new(rng: &'a mut R) -> Self {
        ZooBuilder { rng }
    }

    /// Uniform weight in [-limit, limit] (He-style initialization keeps
    /// activations bounded so softmax outputs stay meaningful).
    fn weight(&mut self, fan_in: usize) -> f32 {
        let limit = (2.0 / fan_in.max(1) as f32).sqrt();
        let unit = (self.rng.next_u32() as f32 / u32::MAX as f32) * 2.0 - 1.0;
        unit * limit
    }

    fn dense(&mut self, out_dim: usize, in_dim: usize, activation: Activation) -> Layer {
        let data: Vec<f32> = (0..out_dim * in_dim).map(|_| self.weight(in_dim)).collect();
        let bias: Vec<f32> = (0..out_dim).map(|_| self.weight(in_dim) * 0.1).collect();
        Layer::Dense {
            weights: Matrix::from_vec(out_dim, in_dim, data),
            bias,
            activation,
        }
    }

    /// MobileNet: a stack of "depthwise-separable" pairs — a narrow layer
    /// followed by an expansion layer — ending in a classifier.
    fn mobilenet(mut self, scale: f64, classes: usize) -> ModelGraph {
        // Full scale: input 1024, 4 separable pairs of width 1024/512 gives
        // ≈ 4.2 M parameters ≈ 17 MB.
        let width = scaled(1024, scale);
        let narrow = scaled(512, scale);
        let input_dim = width;
        let mut layers = Vec::new();
        let blocks = 4;
        for _ in 0..blocks {
            layers.push(self.dense(narrow, width, Activation::Relu));
            layers.push(self.dense(width, narrow, Activation::Relu));
        }
        layers.push(self.dense(classes, width, Activation::None));
        layers.push(Layer::Softmax);
        ModelGraph::new("mobilenet-v1", input_dim, layers).expect("generated model is valid")
    }

    /// ResNet: residual bottleneck blocks over a wide trunk.
    fn resnet(mut self, scale: f64, classes: usize) -> ModelGraph {
        // Full scale: trunk 1664 wide, 16 residual blocks with a 1664->832->1664
        // bottleneck ≈ 44 M parameters ≈ 170 MB.
        let trunk = scaled(1664, scale);
        let bottleneck = scaled(832, scale);
        let input_dim = trunk;
        let mut layers = Vec::new();
        let blocks = 16;
        for _ in 0..blocks {
            let branch = vec![
                self.dense(bottleneck, trunk, Activation::Relu),
                self.dense(trunk, bottleneck, Activation::None),
            ];
            layers.push(Layer::Residual { branch });
        }
        layers.push(self.dense(classes, trunk, Activation::None));
        layers.push(Layer::Softmax);
        ModelGraph::new("resnet101-v2", input_dim, layers).expect("generated model is valid")
    }

    /// DenseNet: dense blocks where each block's output is concatenated to
    /// its input, with transition layers that re-compress the width.
    fn densenet(mut self, scale: f64, classes: usize) -> ModelGraph {
        // Full scale: base width 1024, 6 dense blocks with growth 512 and
        // compression back to 1024 ≈ 11 M parameters ≈ 44 MB.
        let base = scaled(1024, scale);
        let growth = scaled(512, scale);
        let input_dim = base;
        let mut layers = Vec::new();
        let blocks = 6;
        for _ in 0..blocks {
            let branch = vec![self.dense(growth, base, Activation::Relu)];
            layers.push(Layer::DenseBlock { branch });
            // Transition layer compresses back to the base width.
            layers.push(self.dense(base, base + growth, Activation::Relu));
        }
        layers.push(self.dense(classes, base, Activation::None));
        layers.push(Layer::Softmax);
        ModelGraph::new("densenet121", input_dim, layers).expect("generated model is valid")
    }
}

fn scaled(full: usize, scale: f64) -> usize {
    // Parameter count grows quadratically with width, so width scales with
    // sqrt(scale) to make `scale` approximately the parameter-count ratio.
    ((full as f64 * scale.sqrt()).round() as usize).max(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_and_ids() {
        assert_eq!(ModelKind::MbNet.label(), "MBNET");
        assert_eq!(ModelKind::RsNet.label(), "RSNET");
        assert_eq!(ModelKind::DsNet.label(), "DSNET");
        assert_eq!(ModelKind::MbNet.default_id().as_str(), "mbnet");
        assert_eq!(ModelKind::ALL.len(), 3);
    }

    #[test]
    fn full_sizes_match_table_1() {
        assert_eq!(ModelKind::MbNet.full_model_bytes(), 17 * 1024 * 1024);
        assert_eq!(ModelKind::RsNet.full_model_bytes(), 170 * 1024 * 1024);
        assert_eq!(ModelKind::DsNet.full_model_bytes(), 44 * 1024 * 1024);
    }

    #[test]
    fn scaled_models_are_valid_and_runnable() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in ModelKind::ALL {
            let model = kind.generate(0.01, &mut rng);
            model.validate().unwrap();
            let input = vec![0.1f32; model.input_dim];
            let output = model.forward(&input).unwrap();
            assert_eq!(output.len(), kind.num_classes());
            let sum: f32 = output.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "softmax sum {sum}");
        }
    }

    #[test]
    fn relative_sizes_follow_the_paper_ordering() {
        let mut rng = StdRng::seed_from_u64(2);
        let mb = ModelKind::MbNet.generate(0.02, &mut rng).parameter_bytes();
        let rs = ModelKind::RsNet.generate(0.02, &mut rng).parameter_bytes();
        let ds = ModelKind::DsNet.generate(0.02, &mut rng).parameter_bytes();
        // RSNET > DSNET > MBNET, as in Table I.
        assert!(rs > ds, "rs={rs} ds={ds}");
        assert!(ds > mb, "ds={ds} mb={mb}");
    }

    #[test]
    fn full_scale_parameter_budget_is_close_to_table_1() {
        // Compute parameter counts analytically (cheap) rather than
        // materializing 170 MB of weights: generate at scale 1.0 would be
        // slow in debug builds, so check the arithmetic of the generators at
        // a moderate scale and extrapolate quadratically.
        let mut rng = StdRng::seed_from_u64(3);
        let scale = 0.0625; // width factor 0.25 => params factor ~1/16
        for kind in ModelKind::ALL {
            let small = kind.generate(scale, &mut rng).parameter_bytes() as f64;
            let extrapolated = small / scale;
            let target = kind.full_model_bytes() as f64;
            let ratio = extrapolated / target;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: extrapolated {extrapolated:.0} vs target {target:.0} (ratio {ratio:.2})",
                kind.label()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_given_the_rng_seed() {
        let a = ModelKind::DsNet.generate(0.01, &mut StdRng::seed_from_u64(7));
        let b = ModelKind::DsNet.generate(0.01, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = ModelKind::DsNet.generate(0.01, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_is_rejected() {
        let _ = ModelKind::MbNet.generate(0.0, &mut StdRng::seed_from_u64(0));
    }
}
