//! Neural-network layers and the forward pass.
//!
//! The three model families the paper uses map onto three structural motifs,
//! all expressible with the layer set below:
//!
//! * **MobileNet** — a plain stack of (separable) dense layers with ReLU.
//! * **ResNet** — residual blocks: `y = x + F(x)`.
//! * **DenseNet** — dense blocks: `y = concat(x, F(x))`.

use crate::error::InferenceError;
use crate::tensor::Matrix;

/// Element-wise activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies the activation in place.
    pub fn apply(self, values: &mut [f32]) {
        if self == Activation::Relu {
            for v in values.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Wire-format tag used by the model serializer.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            Activation::None => 0,
            Activation::Relu => 1,
        }
    }

    /// Parses a wire-format tag.
    pub fn from_tag(tag: u8) -> Result<Self, InferenceError> {
        match tag {
            0 => Ok(Activation::None),
            1 => Ok(Activation::Relu),
            other => Err(InferenceError::MalformedModel(format!(
                "unknown activation tag {other}"
            ))),
        }
    }
}

/// A single layer of a [`crate::model::ModelGraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum Layer {
    /// Fully-connected layer: `y = act(W·x + b)`.
    Dense {
        /// Weight matrix of shape `output_dim × input_dim`.
        weights: Matrix,
        /// Bias of length `output_dim`.
        bias: Vec<f32>,
        /// Activation applied to the output.
        activation: Activation,
    },
    /// Residual connection: `y = x + F(x)`, where `F` preserves width
    /// (ResNet motif).
    Residual {
        /// The residual branch.
        branch: Vec<Layer>,
    },
    /// Dense-block connection: `y = concat(x, F(x))` (DenseNet motif).
    DenseBlock {
        /// The growth branch.
        branch: Vec<Layer>,
    },
    /// Softmax over the activation vector (final classifier layer).
    Softmax,
}

impl Layer {
    /// Output width of this layer given the input width, or an error if the
    /// widths are inconsistent.
    pub fn output_dim(
        &self,
        input_dim: usize,
        layer_index: usize,
    ) -> Result<usize, InferenceError> {
        match self {
            Layer::Dense { weights, bias, .. } => {
                if weights.cols() != input_dim {
                    return Err(InferenceError::ShapeMismatch {
                        layer: layer_index,
                        expected: weights.cols(),
                        actual: input_dim,
                    });
                }
                if bias.len() != weights.rows() {
                    return Err(InferenceError::MalformedModel(format!(
                        "layer {layer_index}: bias length {} does not match output dim {}",
                        bias.len(),
                        weights.rows()
                    )));
                }
                Ok(weights.rows())
            }
            Layer::Residual { branch } => {
                let branch_out = output_dim_of(branch, input_dim, layer_index)?;
                if branch_out != input_dim {
                    return Err(InferenceError::ShapeMismatch {
                        layer: layer_index,
                        expected: input_dim,
                        actual: branch_out,
                    });
                }
                Ok(input_dim)
            }
            Layer::DenseBlock { branch } => {
                let branch_out = output_dim_of(branch, input_dim, layer_index)?;
                Ok(input_dim + branch_out)
            }
            Layer::Softmax => Ok(input_dim),
        }
    }

    /// Number of `f32` parameters in this layer (recursively).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        match self {
            Layer::Dense { weights, bias, .. } => weights.len() + bias.len(),
            Layer::Residual { branch } | Layer::DenseBlock { branch } => {
                branch.iter().map(Layer::parameter_count).sum()
            }
            Layer::Softmax => 0,
        }
    }

    /// Number of primitive operations (dense matvecs + element-wise ops) in
    /// this layer, used by the TFLM-style interpreter to charge per-op
    /// dispatch overhead.
    #[must_use]
    pub fn op_count(&self) -> usize {
        match self {
            Layer::Dense { .. } => 2, // matvec + bias/activation
            Layer::Residual { branch } => 1 + branch.iter().map(Layer::op_count).sum::<usize>(),
            Layer::DenseBlock { branch } => 1 + branch.iter().map(Layer::op_count).sum::<usize>(),
            Layer::Softmax => 1,
        }
    }

    /// Validates that all parameters are finite.
    pub fn validate(&self) -> Result<(), InferenceError> {
        match self {
            Layer::Dense { weights, bias, .. } => {
                weights.validate_finite()?;
                if bias.iter().all(|b| b.is_finite()) {
                    Ok(())
                } else {
                    Err(InferenceError::NonFiniteParameter)
                }
            }
            Layer::Residual { branch } | Layer::DenseBlock { branch } => {
                branch.iter().try_for_each(Layer::validate)
            }
            Layer::Softmax => Ok(()),
        }
    }
}

/// Output width of a layer sequence given the input width.
pub fn output_dim_of(
    layers: &[Layer],
    input_dim: usize,
    base_index: usize,
) -> Result<usize, InferenceError> {
    let mut dim = input_dim;
    for (i, layer) in layers.iter().enumerate() {
        dim = layer.output_dim(dim, base_index + i)?;
    }
    Ok(dim)
}

/// Applies softmax in place (numerically stabilized).
pub fn softmax_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(out_dim: usize, in_dim: usize, value: f32, activation: Activation) -> Layer {
        Layer::Dense {
            weights: Matrix::from_vec(out_dim, in_dim, vec![value; out_dim * in_dim]),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut values = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply(&mut values);
        assert_eq!(values, vec![0.0, 0.0, 2.0]);
        let mut values = vec![-1.0, 2.0];
        Activation::None.apply(&mut values);
        assert_eq!(values, vec![-1.0, 2.0]);
    }

    #[test]
    fn activation_tags_roundtrip() {
        for act in [Activation::None, Activation::Relu] {
            assert_eq!(Activation::from_tag(act.tag()).unwrap(), act);
        }
        assert!(Activation::from_tag(9).is_err());
    }

    #[test]
    fn dense_output_dim_checks_input_width() {
        let layer = dense(4, 8, 0.1, Activation::Relu);
        assert_eq!(layer.output_dim(8, 0).unwrap(), 4);
        assert!(matches!(
            layer.output_dim(5, 0),
            Err(InferenceError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn residual_requires_width_preservation() {
        let good = Layer::Residual {
            branch: vec![dense(6, 6, 0.1, Activation::Relu)],
        };
        assert_eq!(good.output_dim(6, 0).unwrap(), 6);

        let bad = Layer::Residual {
            branch: vec![dense(4, 6, 0.1, Activation::Relu)],
        };
        assert!(bad.output_dim(6, 0).is_err());
    }

    #[test]
    fn dense_block_grows_width() {
        let block = Layer::DenseBlock {
            branch: vec![dense(3, 6, 0.1, Activation::Relu)],
        };
        assert_eq!(block.output_dim(6, 0).unwrap(), 9);
    }

    #[test]
    fn parameter_and_op_counts() {
        let layer = dense(4, 8, 0.1, Activation::Relu);
        assert_eq!(layer.parameter_count(), 4 * 8 + 4);
        assert_eq!(layer.op_count(), 2);
        let block = Layer::Residual {
            branch: vec![
                dense(4, 4, 0.1, Activation::Relu),
                dense(4, 4, 0.1, Activation::None),
            ],
        };
        assert_eq!(block.parameter_count(), 2 * (16 + 4));
        assert_eq!(block.op_count(), 1 + 4);
        assert_eq!(Layer::Softmax.parameter_count(), 0);
    }

    #[test]
    fn bias_length_mismatch_is_malformed() {
        let layer = Layer::Dense {
            weights: Matrix::from_vec(2, 2, vec![0.0; 4]),
            bias: vec![0.0; 3],
            activation: Activation::None,
        };
        assert!(matches!(
            layer.output_dim(2, 0),
            Err(InferenceError::MalformedModel(_))
        ));
    }

    #[test]
    fn softmax_normalizes_and_is_stable() {
        let mut values = vec![1000.0, 1001.0, 1002.0];
        softmax_in_place(&mut values);
        let sum: f32 = values.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(values[2] > values[1] && values[1] > values[0]);
        // Empty input is a no-op.
        let mut empty: Vec<f32> = vec![];
        softmax_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn validate_rejects_nan_in_nested_branch() {
        let block = Layer::Residual {
            branch: vec![Layer::Dense {
                weights: Matrix::from_vec(1, 1, vec![f32::NAN]),
                bias: vec![0.0],
                activation: Activation::None,
            }],
        };
        assert!(block.validate().is_err());
    }
}
