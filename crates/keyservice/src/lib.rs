//! # sesemi-keyservice
//!
//! The KeyService is SeSeMI's trust-establishment component (paper §IV-A):
//! an always-on enclave that bridges model owners / model users and the
//! ephemeral serverless enclaves.  It stores four data sets:
//!
//! * `KS_I` — ⟨id, K_id⟩: registered owner/user identities and their
//!   long-term keys (`id = SHA-256(K_id)`).
//! * `KS_M` — ⟨M_oid, K_M⟩: model decryption keys added by model owners.
//! * `KS_R` — ⟨M_oid ∥ E_S ∥ uid, K_R⟩: request keys added by users, bound to
//!   a model and the enclave identity allowed to use them.
//! * `ACM` — ⟨M_oid ∥ E_S ∥ uid⟩: the owner's access-control grants.
//!
//! and implements the five operations of Algorithm 1
//! (`USER_REGISTRATION`, `ADD_MODEL_KEY`, `GRANT_ACCESS`, `ADD_REQ_KEY`,
//! `KEY_PROVISIONING`).  Keys are provisioned only to a SeMIRT enclave whose
//! attested measurement matches both the owner's grant and the user's request
//! key binding, over a mutually attested RA-TLS channel.
//!
//! Module layout:
//! * [`keystore`] — the in-enclave state and Algorithm 1 logic.
//! * [`messages`] — the encrypted request payloads exchanged with owners and
//!   users (sealed under their long-term identity keys).
//! * [`service`] — the connection-level service: RA-TLS endpoint, per-thread
//!   TCS accounting, latency model for provisioning calls.
//! * [`client`] — owner-side and user-side helpers that build the encrypted
//!   payloads and drive the registration workflow.
//! * [`replicated`] — a mesh of mutually attested KeyService replicas with
//!   sealed-state sync, user sharding and deterministic failover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod keystore;
pub mod messages;
pub mod replicated;
pub mod service;

pub use client::{OwnerClient, UserClient};
pub use error::KeyServiceError;
pub use keystore::{KeyStore, PartyId};
pub use replicated::ReplicatedKeyService;
pub use service::KeyService;
