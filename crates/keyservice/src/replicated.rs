//! A replica set of KeyService enclaves with attested peering and
//! deterministic failover.
//!
//! The single [`KeyService`] enclave is SeSeMI's availability weak point:
//! every cold start needs `KEY_PROVISIONING`, so one crashed enclave stalls
//! the whole cluster's cold paths.  [`ReplicatedKeyService`] runs `n`
//! replicas of the *same* KeyService code and wires them into a full mesh of
//! mutually attested RA-TLS channels:
//!
//! * **Peer verification** — [`ReplicatedKeyService::form_mesh`] only admits
//!   replicas whose attested measurement equals the set's common identity
//!   `E_K`: each pairwise handshake goes through
//!   [`KeyService::accept_peer_connection`], which rejects an initiator whose
//!   quote carries any other measurement.  A compromised or modified enclave
//!   cannot join the mesh and therefore never receives synced key state.
//! * **State sync** — the replicas stay identical by state-machine
//!   replication of Algorithm 1's mutations: the coordinator (first alive
//!   replica) applies a `Register` / `OwnerOp` / `UserOp` locally and then
//!   replays the *sealed* request over the mesh channels to every other
//!   alive replica.  Each replica independently opens the sealed payload and
//!   updates its own `KS_I` / `KS_M` / `KS_R` / `ACM` sets — sealed state
//!   never leaves an enclave in the clear, and per-replica replay-rejection
//!   sets make delivering the same sealed bytes to every replica legal.
//! * **Sharding and failover** — `KEY_PROVISIONING` is read-only and served
//!   from a single replica: the user's home shard (a stable hash of the
//!   party id modulo `n`), falling over to the next alive index in
//!   deterministic wrap-around order when the home replica is dead.  The
//!   cluster simulator's
//!   [`KeyServiceConfig`](../../sesemi/cluster/struct.KeyServiceConfig.html)
//!   models exactly this routing at fleet scale.
//!
//! Mesh links consume real enclave concurrency: each replica responds to
//! `n - 1` peers, so a mesh of `n` holds `n - 1` TCSs on every replica —
//! capacity the operator must budget alongside client connections.  When a
//! replica [`crash`](ReplicatedKeyService::crash)es, survivors close the
//! dead peer's connections and get those TCSs back.

use crate::error::KeyServiceError;
use crate::keystore::PartyId;
use crate::service::{
    decode_response, encode_request, ConnectionId, KeyService, Request, Response,
};
use parking_lot::Mutex;
use rand::RngCore;
use sesemi_enclave::ratls::{HandshakeInitiator, SecureChannel};
use sesemi_enclave::{Measurement, QuoteVerifier};
use sesemi_inference::ModelId;
use std::sync::Arc;

/// One direction of a peered pair: the initiator-side channel state plus the
/// connection id it holds on the responder.
struct PeerLink {
    channel: SecureChannel,
    connection: ConnectionId,
}

/// A mesh of mutually attested [`KeyService`] replicas (see the module
/// docs for the replication contract).
pub struct ReplicatedKeyService {
    replicas: Vec<Arc<KeyService>>,
    measurement: Measurement,
    /// `links[i][j]` — the channel replica `i` initiates to replica `j`
    /// (`None` on the diagonal and after either end crashed).
    links: Mutex<Vec<Vec<Option<PeerLink>>>>,
    alive: Mutex<Vec<bool>>,
}

impl ReplicatedKeyService {
    /// Forms the replica mesh: every ordered pair of replicas completes a
    /// mutually attested RA-TLS handshake in which the responder insists on
    /// the set's common measurement.
    ///
    /// # Errors
    /// Fails if `services` is empty, if any replica's measurement differs
    /// from the first's (the set must run identical code), or if any
    /// pairwise handshake is rejected.
    pub fn form_mesh<R: RngCore>(
        services: Vec<Arc<KeyService>>,
        verifier: &QuoteVerifier,
        rng: &mut R,
    ) -> Result<Self, KeyServiceError> {
        let Some(first) = services.first() else {
            return Err(KeyServiceError::Channel(
                "a replica set needs at least one KeyService".to_string(),
            ));
        };
        let measurement = first.measurement();
        if let Some(stranger) = services.iter().find(|s| s.measurement() != measurement) {
            return Err(KeyServiceError::AttestationFailed(format!(
                "replica set must run identical code: {:?} differs from {:?}",
                stranger.measurement(),
                measurement
            )));
        }
        let n = services.len();
        let mut links: Vec<Vec<Option<PeerLink>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (initiator, _) = HandshakeInitiator::new_attested(services[i].enclave(), rng)?;
                let (hello, connection, _) =
                    services[j].accept_peer_connection(&initiator.hello(), &measurement, rng)?;
                let channel = initiator.finish(&hello, verifier, &measurement)?;
                links[i][j] = Some(PeerLink {
                    channel,
                    connection,
                });
            }
        }
        Ok(ReplicatedKeyService {
            alive: Mutex::new(vec![true; n]),
            links: Mutex::new(links),
            replicas: services,
            measurement,
        })
    }

    /// Number of replicas in the set (alive or not).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// A replica's underlying [`KeyService`] (test and wiring access).
    #[must_use]
    pub fn replica(&self, index: usize) -> &Arc<KeyService> {
        &self.replicas[index]
    }

    /// The replica set's common code identity `E_K`.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Number of replicas still alive.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive.lock().iter().filter(|a| **a).count()
    }

    /// The home shard a user's provisions route to: a stable hash of the
    /// party id modulo the replica count (liveness-independent — failover
    /// happens at routing time, not at shard assignment).
    #[must_use]
    pub fn home_shard(&self, user: &PartyId) -> usize {
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&user.as_bytes()[..8]);
        (u64::from_le_bytes(prefix) % self.replicas.len() as u64) as usize
    }

    /// The replica that will actually serve `user` right now: the home shard
    /// if alive, else the next alive index in wrap-around order.  `None`
    /// during a total outage.
    #[must_use]
    pub fn route(&self, user: &PartyId) -> Option<usize> {
        let alive = self.alive.lock();
        let n = self.replicas.len();
        let home = self.home_shard(user);
        (0..n).map(|step| (home + step) % n).find(|r| alive[*r])
    }

    /// Kills a replica: marks it dead, and closes every mesh connection it
    /// held so survivors get the dead peer's TCSs back.  Returns `false` if
    /// the index is out of range or the replica was already dead.
    pub fn crash(&self, replica: usize) -> bool {
        let mut alive = self.alive.lock();
        if replica >= self.replicas.len() || !alive[replica] {
            return false;
        }
        alive[replica] = false;
        let mut links = self.links.lock();
        for j in 0..self.replicas.len() {
            // The dead replica's initiator-side connections hold TCSs on the
            // survivors: close them there.
            if let Some(link) = links[replica][j].take() {
                self.replicas[j].close_connection(link.connection);
            }
            // Survivors' channels *to* the dead replica are gone too.
            links[j][replica] = None;
        }
        true
    }

    /// Handles a request against the replica set.
    ///
    /// Mutations (`Register` / `OwnerOp` / `UserOp`) are applied on the
    /// coordinator — the first alive replica — and replayed over the mesh to
    /// every other alive replica; the coordinator's response is returned.
    /// `Provision` is read-only and served from the user's shard (see
    /// [`ReplicatedKeyService::route`]); `peer` is the provisioning
    /// enclave's attested measurement, exactly as in
    /// [`KeyService::handle_request`].
    pub fn handle_request(&self, request: Request, peer: Option<Measurement>) -> Response {
        match &request {
            Request::Provision { user, .. } => {
                let Some(replica) = self.route(user) else {
                    return Response::Error(KeyServiceError::Channel(
                        "every KeyService replica is down".to_string(),
                    ));
                };
                self.replicas[replica].handle_request(request, peer)
            }
            _ => self.replicate(request),
        }
    }

    /// Convenience wrapper for `KEY_PROVISIONING` that also reports which
    /// replica served the request.
    pub fn provision(
        &self,
        user: PartyId,
        model: ModelId,
        enclave: Measurement,
    ) -> (Response, Option<usize>) {
        let replica = self.route(&user);
        let response = self.handle_request(Request::Provision { user, model }, Some(enclave));
        (response, replica)
    }

    /// Applies a mutation on the coordinator and replays it to every other
    /// alive replica over the attested mesh channels.
    fn replicate(&self, request: Request) -> Response {
        let alive = self.alive.lock().clone();
        let Some(coordinator) = alive.iter().position(|a| *a) else {
            return Response::Error(KeyServiceError::Channel(
                "every KeyService replica is down".to_string(),
            ));
        };
        let response = self.replicas[coordinator].handle_request(request.clone(), None);
        let record_plaintext = encode_request(&request);
        let mut links = self.links.lock();
        for (peer, peer_alive) in alive.iter().enumerate() {
            if !peer_alive || peer == coordinator {
                continue;
            }
            let Some(link) = links[coordinator][peer].as_mut() else {
                continue;
            };
            let record = link.channel.send(&record_plaintext);
            let peer_response = self.replicas[peer]
                .handle_record(link.connection, &record)
                .and_then(|(response_record, _)| {
                    link.channel
                        .recv(&response_record)
                        .map_err(|e| KeyServiceError::Channel(e.to_string()))
                })
                .and_then(|plaintext| decode_response(&plaintext));
            // Replicas are deterministic state machines fed identical
            // mutation streams, so a diverging answer is a replication bug,
            // not a user error.
            debug_assert_eq!(peer_response.as_ref(), Ok(&response));
        }
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{OwnerRequest, UserRequest};
    use sesemi_crypto::aead::AeadKey;
    use sesemi_crypto::rng::SessionRng;
    use sesemi_enclave::attest::{AttestationAuthority, AttestationScheme};
    use sesemi_enclave::{CodeIdentity, Enclave, EnclaveConfig, SgxPlatform};

    const MB: u64 = 1024 * 1024;

    struct Mesh {
        set: ReplicatedKeyService,
        verifier: QuoteVerifier,
        rng: SessionRng,
    }

    fn launch_replica(
        authority: &Arc<AttestationAuthority>,
        identity: &str,
        code: &[u8],
        node: &str,
    ) -> Arc<KeyService> {
        let platform = SgxPlatform::paper_sgx2_node(node);
        authority.register_platform(node, AttestationScheme::EcdsaDcap);
        let enclave = Enclave::launch(
            &platform,
            authority,
            CodeIdentity::new(identity, code.to_vec(), "1.0"),
            EnclaveConfig::new(64 * MB, 8),
            1,
        )
        .unwrap()
        .0;
        Arc::new(KeyService::new(Arc::new(enclave), authority.verifier()))
    }

    fn mesh(n: usize) -> Mesh {
        let authority = AttestationAuthority::new(17);
        let services: Vec<_> = (0..n)
            .map(|i| {
                launch_replica(
                    &authority,
                    "keyservice",
                    b"keyservice code",
                    &format!("ks-{i}"),
                )
            })
            .collect();
        let verifier = authority.verifier();
        let mut rng = SessionRng::from_seed(21);
        let set = ReplicatedKeyService::form_mesh(services, &verifier, &mut rng).unwrap();
        Mesh { set, verifier, rng }
    }

    /// Registers an owner and a user, adds a model key, a grant and a
    /// request key — all through the replica set — and returns the parties.
    fn provisioned_world(mesh: &mut Mesh, semirt: Measurement) -> (PartyId, PartyId) {
        let owner_key = AeadKey::from_bytes([1u8; 16]);
        let user_key = AeadKey::from_bytes([2u8; 16]);
        let Response::Registered(owner) = mesh.set.handle_request(
            Request::Register {
                identity_key: owner_key.clone(),
            },
            None,
        ) else {
            panic!("owner registration failed");
        };
        let Response::Registered(user) = mesh.set.handle_request(
            Request::Register {
                identity_key: user_key.clone(),
            },
            None,
        ) else {
            panic!("user registration failed");
        };
        let model = ModelId::new("diagnosis");
        for payload in [
            OwnerRequest::AddModelKey {
                model: model.clone(),
                model_key: AeadKey::from_bytes([10u8; 16]),
            },
            OwnerRequest::GrantAccess {
                model: model.clone(),
                enclave: semirt,
                user,
            },
        ] {
            let sealed = payload.seal(&owner_key, &mut mesh.rng);
            assert_eq!(
                mesh.set.handle_request(
                    Request::OwnerOp {
                        owner,
                        payload: sealed
                    },
                    None
                ),
                Response::Ok
            );
        }
        let sealed = UserRequest::AddRequestKey {
            model,
            enclave: semirt,
            request_key: AeadKey::from_bytes([20u8; 16]),
        }
        .seal(&user_key, &mut mesh.rng);
        assert_eq!(
            mesh.set.handle_request(
                Request::UserOp {
                    user,
                    payload: sealed
                },
                None
            ),
            Response::Ok
        );
        (owner, user)
    }

    fn semirt_measurement() -> Measurement {
        CodeIdentity::new("semirt", b"semirt code".to_vec(), "1.0").measure()
    }

    #[test]
    fn the_mesh_syncs_sealed_state_to_every_replica() {
        let mut m = mesh(3);
        let semirt = semirt_measurement();
        provisioned_world(&mut m, semirt);
        // Every replica independently holds the full KS_I/KS_M/KS_R/ACM
        // state: 2 parties, 1 model key, 1 request key, 1 grant.
        for i in 0..3 {
            assert_eq!(m.set.replica(i).store_stats(), (2, 1, 1, 1));
        }
        // And each replica holds n-1 = 2 peer connections.
        for i in 0..3 {
            assert_eq!(m.set.replica(i).open_connections(), 2);
        }
    }

    #[test]
    fn a_replica_running_different_code_cannot_join_the_mesh() {
        let authority = AttestationAuthority::new(17);
        let good = launch_replica(&authority, "keyservice", b"keyservice code", "ks-0");
        let rogue = launch_replica(&authority, "keyservice", b"tampered code", "ks-1");
        let verifier = authority.verifier();
        let mut rng = SessionRng::from_seed(22);
        let result = ReplicatedKeyService::form_mesh(vec![good, rogue], &verifier, &mut rng);
        assert!(matches!(result, Err(KeyServiceError::AttestationFailed(_))));
    }

    #[test]
    fn provisioning_fails_over_to_the_next_alive_replica() {
        let mut m = mesh(3);
        let semirt = semirt_measurement();
        let (_, user) = provisioned_world(&mut m, semirt);
        let home = m.set.home_shard(&user);
        let model = ModelId::new("diagnosis");

        let (response, served_by) = m.set.provision(user, model.clone(), semirt);
        assert!(matches!(response, Response::Keys { .. }));
        assert_eq!(served_by, Some(home));

        // Kill the home replica: the same provision is served by the next
        // alive index, with identical keys (state was synced).
        assert!(m.set.crash(home));
        assert_eq!(m.set.alive_count(), 2);
        let survivor = (home + 1) % 3;
        let (failover_response, served_by) = m.set.provision(user, model, semirt);
        assert_eq!(failover_response, response);
        assert_eq!(served_by, Some(survivor));

        // Crashing the same replica twice is a no-op.
        assert!(!m.set.crash(home));
        assert!(!m.set.crash(17));
    }

    #[test]
    fn mutations_keep_replicating_after_a_crash() {
        let mut m = mesh(3);
        let semirt = semirt_measurement();
        provisioned_world(&mut m, semirt);
        assert!(m.set.crash(0));
        // A post-crash registration reaches both survivors (the coordinator
        // role moved to replica 1).
        let response = m.set.handle_request(
            Request::Register {
                identity_key: AeadKey::from_bytes([3u8; 16]),
            },
            None,
        );
        assert!(matches!(response, Response::Registered(_)));
        assert_eq!(m.set.replica(1).store_stats().0, 3);
        assert_eq!(m.set.replica(2).store_stats().0, 3);
        // The dead replica saw nothing.
        assert_eq!(m.set.replica(0).store_stats().0, 2);
    }

    #[test]
    fn a_total_outage_answers_with_an_error_not_a_panic() {
        let mut m = mesh(2);
        let semirt = semirt_measurement();
        let (_, user) = provisioned_world(&mut m, semirt);
        assert!(m.set.crash(0));
        assert!(m.set.crash(1));
        assert_eq!(m.set.alive_count(), 0);
        assert_eq!(m.set.route(&user), None);
        let (response, served_by) = m.set.provision(user, ModelId::new("diagnosis"), semirt);
        assert!(matches!(
            response,
            Response::Error(KeyServiceError::Channel(_))
        ));
        assert_eq!(served_by, None);
        assert!(matches!(
            m.set.handle_request(
                Request::Register {
                    identity_key: AeadKey::from_bytes([4u8; 16])
                },
                None
            ),
            Response::Error(KeyServiceError::Channel(_))
        ));
    }

    #[test]
    fn mesh_links_consume_tcs_and_a_crash_gives_them_back() {
        // 4 replicas, 8 TCSs each: the mesh holds 3 TCSs per replica, so a
        // replica accepts 5 more client connections; the 6th is refused;
        // closing one (or losing a peer) frees a slot.
        let m = mesh(4);
        let service = m.set.replica(0).clone();
        assert_eq!(service.open_connections(), 3);
        let mut rng = SessionRng::from_seed(23);
        let mut clients = Vec::new();
        for _ in 0..5 {
            let initiator = HandshakeInitiator::new_client(&mut rng);
            let (hello, connection, _) = service
                .accept_connection(&initiator.hello(), &mut rng)
                .unwrap();
            initiator
                .finish(&hello, &m.verifier, &service.measurement())
                .unwrap();
            clients.push(connection);
        }
        let overflow = HandshakeInitiator::new_client(&mut rng);
        assert!(service
            .accept_connection(&overflow.hello(), &mut rng)
            .is_err());

        // Closing a client connection frees a TCS: the retry succeeds.
        service.close_connection(clients.pop().unwrap());
        let retry = HandshakeInitiator::new_client(&mut rng);
        assert!(service.accept_connection(&retry.hello(), &mut rng).is_ok());

        // Replica 1's crash releases the TCS its mesh link held on replica
        // 0: a ninth connection now fits where it did not before.
        let full = HandshakeInitiator::new_client(&mut rng);
        assert!(service.accept_connection(&full.hello(), &mut rng).is_err());
        assert!(m.set.crash(1));
        let after_crash = HandshakeInitiator::new_client(&mut rng);
        assert!(service
            .accept_connection(&after_crash.hello(), &mut rng)
            .is_ok());
    }
}
