//! Error type for the KeyService.

use std::fmt;

/// Errors raised by KeyService operations.
///
/// Authorization failures are deliberately coarse: a caller cannot
/// distinguish "model does not exist" from "you are not authorized", which
/// avoids leaking which models / users are registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyServiceError {
    /// The caller's identity is not registered in `KS_I`.
    UnknownParty,
    /// A payload failed to decrypt or parse under the caller's identity key.
    InvalidPayload,
    /// The requested provisioning is not authorized by the access-control
    /// state (missing grant, missing request key, or mismatched enclave
    /// identity).
    NotAuthorized,
    /// The remote attestation quote could not be verified.
    AttestationFailed(String),
    /// The secure channel failed (handshake or record protection).
    Channel(String),
    /// An operation conflicts with existing state (e.g. re-registering a
    /// different key for the same model id).
    Conflict(String),
}

impl fmt::Display for KeyServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyServiceError::UnknownParty => write!(f, "unknown owner or user identity"),
            KeyServiceError::InvalidPayload => write!(f, "payload failed to decrypt or parse"),
            KeyServiceError::NotAuthorized => write!(f, "request not authorized"),
            KeyServiceError::AttestationFailed(reason) => {
                write!(f, "remote attestation failed: {reason}")
            }
            KeyServiceError::Channel(reason) => write!(f, "secure channel error: {reason}"),
            KeyServiceError::Conflict(reason) => write!(f, "conflicting state: {reason}"),
        }
    }
}

impl std::error::Error for KeyServiceError {}

impl From<sesemi_enclave::EnclaveError> for KeyServiceError {
    fn from(err: sesemi_enclave::EnclaveError) -> Self {
        match err {
            sesemi_enclave::EnclaveError::QuoteVerificationFailed(reason) => {
                KeyServiceError::AttestationFailed(reason)
            }
            other => KeyServiceError::Channel(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(KeyServiceError::UnknownParty
            .to_string()
            .contains("unknown"));
        assert!(KeyServiceError::NotAuthorized
            .to_string()
            .contains("not authorized"));
        assert!(KeyServiceError::AttestationFailed("bad quote".into())
            .to_string()
            .contains("bad quote"));
    }

    #[test]
    fn enclave_errors_map_to_keyservice_errors() {
        let err: KeyServiceError =
            sesemi_enclave::EnclaveError::QuoteVerificationFailed("sig".into()).into();
        assert!(matches!(err, KeyServiceError::AttestationFailed(_)));
        let err: KeyServiceError = sesemi_enclave::EnclaveError::EnclaveDestroyed.into();
        assert!(matches!(err, KeyServiceError::Channel(_)));
    }
}
