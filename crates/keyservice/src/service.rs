//! The connection-level KeyService: an always-on enclave endpoint that
//! owners, users and SeMIRT enclaves talk to over RA-TLS channels.
//!
//! Each connection is handled by a thread bound to a TCS inside the
//! KeyService enclave (paper §V: "It supports multiple connections, and each
//! connection is handled by a thread, which corresponds to a TCS inside the
//! enclave").  Requests and responses travel as encrypted records over the
//! per-connection [`SecureChannel`]; the request payloads for owner/user
//! operations are *additionally* sealed under the party's long-term identity
//! key, exactly as in Algorithm 1.

use crate::error::KeyServiceError;
use crate::keystore::{KeyStore, PartyId};
use parking_lot::Mutex;
use rand::RngCore;
use sesemi_crypto::aead::{AeadKey, KEY_LEN};
use sesemi_enclave::enclave::TcsToken;
use sesemi_enclave::ratls::{respond, InitiatorHello, ResponderHello, SecureChannel};
use sesemi_enclave::{Enclave, Measurement, QuoteVerifier};
use sesemi_inference::ModelId;
use sesemi_sim::SimDuration;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of an open connection to the KeyService.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConnectionId(u64);

/// A request arriving over an established channel (after record decryption).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// `USER_REGISTRATION`: register the sender's long-term identity key.
    Register {
        /// The long-term identity key to register.
        identity_key: AeadKey,
    },
    /// An owner operation (`ADD_MODEL_KEY` / `GRANT_ACCESS`); the payload is
    /// sealed under the owner's identity key.
    OwnerOp {
        /// The owner's registered identity.
        owner: PartyId,
        /// Sealed [`crate::messages::OwnerRequest`].
        payload: Vec<u8>,
    },
    /// A user operation (`ADD_REQ_KEY`); the payload is sealed under the
    /// user's identity key.
    UserOp {
        /// The user's registered identity.
        user: PartyId,
        /// Sealed [`crate::messages::UserRequest`].
        payload: Vec<u8>,
    },
    /// `KEY_PROVISIONING`: a SeMIRT enclave asks for the model and request
    /// keys needed to serve `user`'s request on `model`.  The enclave
    /// identity is taken from the mutually-attested channel, never from the
    /// request body.
    Provision {
        /// The user whose request is being served.
        user: PartyId,
        /// The model to be served.
        model: ModelId,
    },
}

/// A response returned over the channel.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Registration succeeded; contains the derived party id.
    Registered(PartyId),
    /// The operation succeeded.
    Ok,
    /// Key provisioning succeeded.
    Keys {
        /// Model decryption key `K_M`.
        model_key: AeadKey,
        /// Request key `K_R`.
        request_key: AeadKey,
    },
    /// The operation failed.
    Error(KeyServiceError),
}

struct Connection {
    channel: SecureChannel,
    peer_measurement: Option<Measurement>,
    _tcs: TcsToken,
}

/// The KeyService endpoint.
pub struct KeyService {
    enclave: Arc<Enclave>,
    verifier: QuoteVerifier,
    store: Mutex<KeyStore>,
    /// Connections are individually locked so records on different
    /// connections are handled concurrently (the paper's thread-per-TCS
    /// model, §V); the outer map lock is held only to look a connection up,
    /// insert one, or close one — never across keystore dispatch.
    connections: Mutex<HashMap<u64, Arc<Mutex<Connection>>>>,
    next_connection: AtomicU64,
    provisioning_compute: SimDuration,
}

impl KeyService {
    /// Creates a KeyService around an already-launched enclave.
    #[must_use]
    pub fn new(enclave: Arc<Enclave>, verifier: QuoteVerifier) -> Self {
        KeyService {
            enclave,
            verifier,
            store: Mutex::new(KeyStore::new()),
            connections: Mutex::new(HashMap::new()),
            next_connection: AtomicU64::new(0),
            provisioning_compute: SimDuration::from_millis(3),
        }
    }

    /// The KeyService enclave's measurement (`E_K`), which owners and users
    /// pin before registering.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.enclave.measurement()
    }

    /// The underlying enclave.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Accepts an RA-TLS connection: verifies the initiator's quote if
    /// present (mutual attestation for SeMIRT), produces the responder hello,
    /// and binds the connection to a TCS.
    pub fn accept_connection<R: RngCore>(
        &self,
        hello: &InitiatorHello,
        rng: &mut R,
    ) -> Result<(ResponderHello, ConnectionId, SimDuration), KeyServiceError> {
        // `tcs` is a scoped token: if `respond` rejects the handshake the
        // early return drops it and the TCS is released — a failed
        // attestation must never leak enclave concurrency.
        let tcs = self.enclave.enter().map_err(KeyServiceError::from)?;
        let result = respond(hello, &self.enclave, &self.verifier, rng)?;
        let id = self.next_connection.fetch_add(1, Ordering::Relaxed);
        self.connections.lock().insert(
            id,
            Arc::new(Mutex::new(Connection {
                channel: result.channel,
                peer_measurement: result.initiator_measurement,
                _tcs: tcs,
            })),
        );
        Ok((result.hello, ConnectionId(id), result.quote_latency))
    }

    /// Accepts a connection from a *peer replica*: like
    /// [`KeyService::accept_connection`], but the initiator must present a
    /// quote whose measurement equals `expected` — a mesh only admits peers
    /// running identical KeyService code.
    pub fn accept_peer_connection<R: RngCore>(
        &self,
        hello: &InitiatorHello,
        expected: &Measurement,
        rng: &mut R,
    ) -> Result<(ResponderHello, ConnectionId, SimDuration), KeyServiceError> {
        match hello.quote.as_ref().map(|quote| quote.measurement) {
            Some(measurement) if measurement == *expected => self.accept_connection(hello, rng),
            Some(_) => Err(KeyServiceError::AttestationFailed(
                "peer measurement does not match the replica set".to_string(),
            )),
            None => Err(KeyServiceError::AttestationFailed(
                "peer replicas must attest".to_string(),
            )),
        }
    }

    /// Handles one encrypted record on a connection and returns the encrypted
    /// response record plus the simulated in-enclave processing latency.
    ///
    /// A record that authenticates but carries a malformed request yields an
    /// encrypted [`Response::Error`] record, not an `Err`: `recv` has already
    /// advanced the channel's receive sequence, so swallowing the exchange
    /// would desync the channel and poison every later record on the
    /// connection.  `Err` is reserved for an unknown connection and for
    /// records that fail authentication (a failed `recv` does not advance
    /// the sequence, so the channel stays usable).
    pub fn handle_record(
        &self,
        connection: ConnectionId,
        record: &[u8],
    ) -> Result<(Vec<u8>, SimDuration), KeyServiceError> {
        let conn = self
            .connections
            .lock()
            .get(&connection.0)
            .cloned()
            .ok_or_else(|| KeyServiceError::Channel("unknown connection".to_string()))?;
        let mut conn = conn.lock();
        let plaintext = conn
            .channel
            .recv(record)
            .map_err(|e| KeyServiceError::Channel(e.to_string()))?;
        let response = match decode_request(&plaintext) {
            Ok(request) => self.dispatch(request, conn.peer_measurement),
            Err(err) => Response::Error(err),
        };
        let record = conn.channel.send(&encode_response(&response));
        Ok((record, self.provisioning_compute))
    }

    /// Handles an already-decoded request (used by in-process callers and by
    /// the simulator, which skips the record framing but not the logic).
    pub fn handle_request(
        &self,
        request: Request,
        peer_measurement: Option<Measurement>,
    ) -> Response {
        self.dispatch(request, peer_measurement)
    }

    fn dispatch(&self, request: Request, peer: Option<Measurement>) -> Response {
        let mut store = self.store.lock();
        match request {
            Request::Register { identity_key } => {
                Response::Registered(store.user_registration(identity_key))
            }
            Request::OwnerOp { owner, payload } => {
                match store.handle_owner_request(owner, &payload) {
                    Ok(()) => Response::Ok,
                    Err(err) => Response::Error(err),
                }
            }
            Request::UserOp { user, payload } => match store.handle_user_request(user, &payload) {
                Ok(()) => Response::Ok,
                Err(err) => Response::Error(err),
            },
            Request::Provision { user, model } => {
                // The enclave identity must come from mutual attestation.
                let Some(enclave_identity) = peer else {
                    return Response::Error(KeyServiceError::AttestationFailed(
                        "provisioning requires a mutually attested channel".to_string(),
                    ));
                };
                match store.key_provisioning(user, &model, enclave_identity) {
                    Ok((model_key, request_key)) => Response::Keys {
                        model_key,
                        request_key,
                    },
                    Err(err) => Response::Error(err),
                }
            }
        }
    }

    /// Closes a connection, releasing its TCS.
    pub fn close_connection(&self, connection: ConnectionId) {
        self.connections.lock().remove(&connection.0);
    }

    /// Number of currently open connections.
    #[must_use]
    pub fn open_connections(&self) -> usize {
        self.connections.lock().len()
    }

    /// Read-only snapshot of store statistics: (parties, models, request
    /// keys, grants).
    #[must_use]
    pub fn store_stats(&self) -> (usize, usize, usize, usize) {
        let store = self.store.lock();
        (
            store.registered_parties(),
            store.registered_models(),
            store.registered_request_keys(),
            store.grants(),
        )
    }
}

// --- wire protocol ----------------------------------------------------------

/// Encodes a request for transmission over a secure channel.
#[must_use]
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match request {
        Request::Register { identity_key } => {
            out.push(0);
            out.extend_from_slice(identity_key.as_bytes());
        }
        Request::OwnerOp { owner, payload } => {
            out.push(1);
            out.extend_from_slice(owner.as_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        Request::UserOp { user, payload } => {
            out.push(2);
            out.extend_from_slice(user.as_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
        }
        Request::Provision { user, model } => {
            out.push(3);
            out.extend_from_slice(user.as_bytes());
            let model_bytes = model.as_str().as_bytes();
            out.extend_from_slice(&(model_bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(model_bytes);
        }
    }
    out
}

/// Decodes a request received over a secure channel.
pub fn decode_request(bytes: &[u8]) -> Result<Request, KeyServiceError> {
    if bytes.is_empty() {
        return Err(KeyServiceError::InvalidPayload);
    }
    let body = &bytes[1..];
    match bytes[0] {
        0 => {
            let key: [u8; KEY_LEN] = body
                .try_into()
                .map_err(|_| KeyServiceError::InvalidPayload)?;
            Ok(Request::Register {
                identity_key: AeadKey::from_bytes(key),
            })
        }
        1 | 2 => {
            if body.len() < 36 {
                return Err(KeyServiceError::InvalidPayload);
            }
            let mut party = [0u8; 32];
            party.copy_from_slice(&body[..32]);
            let len = u32::from_le_bytes([body[32], body[33], body[34], body[35]]) as usize;
            if body.len() != 36 + len {
                return Err(KeyServiceError::InvalidPayload);
            }
            let payload = body[36..].to_vec();
            if bytes[0] == 1 {
                Ok(Request::OwnerOp {
                    owner: PartyId::from_bytes(party),
                    payload,
                })
            } else {
                Ok(Request::UserOp {
                    user: PartyId::from_bytes(party),
                    payload,
                })
            }
        }
        3 => {
            if body.len() < 36 {
                return Err(KeyServiceError::InvalidPayload);
            }
            let mut party = [0u8; 32];
            party.copy_from_slice(&body[..32]);
            let len = u32::from_le_bytes([body[32], body[33], body[34], body[35]]) as usize;
            if body.len() != 36 + len {
                return Err(KeyServiceError::InvalidPayload);
            }
            let model =
                std::str::from_utf8(&body[36..]).map_err(|_| KeyServiceError::InvalidPayload)?;
            Ok(Request::Provision {
                user: PartyId::from_bytes(party),
                model: ModelId::new(model),
            })
        }
        _ => Err(KeyServiceError::InvalidPayload),
    }
}

/// Encodes a response for transmission over a secure channel.
#[must_use]
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match response {
        Response::Registered(party) => {
            out.push(0);
            out.extend_from_slice(party.as_bytes());
        }
        Response::Ok => out.push(1),
        Response::Keys {
            model_key,
            request_key,
        } => {
            out.push(2);
            out.extend_from_slice(model_key.as_bytes());
            out.extend_from_slice(request_key.as_bytes());
        }
        Response::Error(err) => {
            out.push(3);
            out.push(error_code(err));
        }
    }
    out
}

/// Decodes a response received over a secure channel.
pub fn decode_response(bytes: &[u8]) -> Result<Response, KeyServiceError> {
    if bytes.is_empty() {
        return Err(KeyServiceError::InvalidPayload);
    }
    let body = &bytes[1..];
    match bytes[0] {
        0 => {
            let party: [u8; 32] = body
                .try_into()
                .map_err(|_| KeyServiceError::InvalidPayload)?;
            Ok(Response::Registered(PartyId::from_bytes(party)))
        }
        1 => Ok(Response::Ok),
        2 => {
            if body.len() != 2 * KEY_LEN {
                return Err(KeyServiceError::InvalidPayload);
            }
            let mut model_key = [0u8; KEY_LEN];
            let mut request_key = [0u8; KEY_LEN];
            model_key.copy_from_slice(&body[..KEY_LEN]);
            request_key.copy_from_slice(&body[KEY_LEN..]);
            Ok(Response::Keys {
                model_key: AeadKey::from_bytes(model_key),
                request_key: AeadKey::from_bytes(request_key),
            })
        }
        3 => {
            if body.len() != 1 {
                return Err(KeyServiceError::InvalidPayload);
            }
            Ok(Response::Error(error_from_code(body[0])))
        }
        _ => Err(KeyServiceError::InvalidPayload),
    }
}

fn error_code(err: &KeyServiceError) -> u8 {
    match err {
        KeyServiceError::UnknownParty => 0,
        KeyServiceError::InvalidPayload => 1,
        KeyServiceError::NotAuthorized => 2,
        KeyServiceError::AttestationFailed(_) => 3,
        KeyServiceError::Channel(_) => 4,
        KeyServiceError::Conflict(_) => 5,
    }
}

fn error_from_code(code: u8) -> KeyServiceError {
    match code {
        0 => KeyServiceError::UnknownParty,
        1 => KeyServiceError::InvalidPayload,
        2 => KeyServiceError::NotAuthorized,
        3 => KeyServiceError::AttestationFailed("remote".to_string()),
        5 => KeyServiceError::Conflict("remote".to_string()),
        _ => KeyServiceError::Channel("remote".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encoding_roundtrips() {
        let requests = [
            Request::Register {
                identity_key: AeadKey::from_bytes([1u8; 16]),
            },
            Request::OwnerOp {
                owner: PartyId::from_bytes([2u8; 32]),
                payload: vec![1, 2, 3, 4],
            },
            Request::UserOp {
                user: PartyId::from_bytes([3u8; 32]),
                payload: vec![],
            },
            Request::Provision {
                user: PartyId::from_bytes([4u8; 32]),
                model: ModelId::new("mbnet"),
            },
        ];
        for request in requests {
            let encoded = encode_request(&request);
            assert_eq!(decode_request(&encoded).unwrap(), request);
        }
    }

    #[test]
    fn response_encoding_roundtrips() {
        let responses = [
            Response::Registered(PartyId::from_bytes([9u8; 32])),
            Response::Ok,
            Response::Keys {
                model_key: AeadKey::from_bytes([1u8; 16]),
                request_key: AeadKey::from_bytes([2u8; 16]),
            },
            Response::Error(KeyServiceError::NotAuthorized),
            Response::Error(KeyServiceError::UnknownParty),
        ];
        for response in responses {
            let encoded = encode_response(&response);
            assert_eq!(decode_response(&encoded).unwrap(), response);
        }
    }

    #[test]
    fn malformed_wire_data_is_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[9]).is_err());
        assert!(decode_request(&[0, 1, 2]).is_err());
        assert!(decode_request(&[1, 0, 0]).is_err());
        // Length field longer than the body.
        let mut bad = vec![1u8];
        bad.extend_from_slice(&[0u8; 32]);
        bad.extend_from_slice(&100u32.to_le_bytes());
        assert!(decode_request(&bad).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_response(&[2, 0]).is_err());
        assert!(decode_response(&[7]).is_err());
        assert!(decode_response(&[3]).is_err());
    }

    #[test]
    fn error_codes_cover_all_variants() {
        let errors = [
            KeyServiceError::UnknownParty,
            KeyServiceError::InvalidPayload,
            KeyServiceError::NotAuthorized,
            KeyServiceError::AttestationFailed("x".into()),
            KeyServiceError::Channel("x".into()),
            KeyServiceError::Conflict("x".into()),
        ];
        let mut codes: Vec<u8> = errors.iter().map(error_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len());
    }

    use sesemi_crypto::rng::SessionRng;
    use sesemi_enclave::attest::{AttestationAuthority, AttestationScheme};
    use sesemi_enclave::ratls::HandshakeInitiator;
    use sesemi_enclave::{CodeIdentity, EnclaveConfig, SgxPlatform};

    const MB: u64 = 1024 * 1024;

    fn service_fixture() -> (KeyService, QuoteVerifier) {
        let platform = SgxPlatform::paper_sgx2_node("ks-node");
        let authority = AttestationAuthority::new(17);
        authority.register_platform("ks-node", AttestationScheme::EcdsaDcap);
        let enclave = Enclave::launch(
            &platform,
            &authority,
            CodeIdentity::new("keyservice", b"keyservice code".to_vec(), "1.0"),
            EnclaveConfig::new(64 * MB, 8),
            1,
        )
        .unwrap()
        .0;
        let verifier = authority.verifier();
        let service = KeyService::new(Arc::new(enclave), verifier.clone());
        (service, verifier)
    }

    fn client_channel<R: RngCore>(
        service: &KeyService,
        verifier: &QuoteVerifier,
        rng: &mut R,
    ) -> (SecureChannel, ConnectionId) {
        let initiator = HandshakeInitiator::new_client(rng);
        let (responder_hello, connection, _) =
            service.accept_connection(&initiator.hello(), rng).unwrap();
        let channel = initiator
            .finish(&responder_hello, verifier, &service.measurement())
            .unwrap();
        (channel, connection)
    }

    #[test]
    fn a_malformed_request_yields_an_error_record_and_the_channel_stays_in_sync() {
        // Regression: `handle_record` used to return an early `Err` after
        // `recv` had already advanced the receive sequence, desyncing the
        // channel — the peer's next exchange then failed on a sequence
        // mismatch.  A malformed-but-authenticated request must produce an
        // encrypted `Response::Error` record instead.
        let (service, verifier) = service_fixture();
        let mut rng = SessionRng::from_seed(11);
        let (mut channel, connection) = client_channel(&service, &verifier, &mut rng);

        // Tag 9 is no known request: authenticates fine, decodes to garbage.
        let garbage = channel.send(&[9u8]);
        let (response_record, _) = service
            .handle_record(connection, &garbage)
            .expect("a decode failure is answered, not swallowed");
        let plaintext = channel.recv(&response_record).unwrap();
        assert_eq!(
            decode_response(&plaintext).unwrap(),
            Response::Error(KeyServiceError::InvalidPayload)
        );

        // The same connection then completes a valid round-trip.
        let register = channel.send(&encode_request(&Request::Register {
            identity_key: AeadKey::from_bytes([7u8; 16]),
        }));
        let (response_record, _) = service.handle_record(connection, &register).unwrap();
        let plaintext = channel.recv(&response_record).unwrap();
        assert!(matches!(
            decode_response(&plaintext).unwrap(),
            Response::Registered(_)
        ));
    }

    #[test]
    fn a_record_that_fails_authentication_neither_answers_nor_desyncs() {
        let (service, verifier) = service_fixture();
        let mut rng = SessionRng::from_seed(12);
        let (mut channel, connection) = client_channel(&service, &verifier, &mut rng);
        // A forged record fails AEAD verification: `recv` does not advance
        // the sequence, so an `Err` (no response record) is correct here.
        assert!(service.handle_record(connection, b"not a record").is_err());
        // The channel is still usable afterwards.
        let register = channel.send(&encode_request(&Request::Register {
            identity_key: AeadKey::from_bytes([8u8; 16]),
        }));
        assert!(service.handle_record(connection, &register).is_ok());
    }

    #[test]
    fn connections_interleave_records_instead_of_serializing_on_one_lock() {
        // Regression: `handle_record` used to hold the global connection-map
        // mutex across keystore dispatch, serializing every connection
        // through one lock.  Holding connection A's (private) per-connection
        // lock must not stop connection B from completing a full round-trip.
        let (service, verifier) = service_fixture();
        let mut rng = SessionRng::from_seed(13);
        let (_channel_a, connection_a) = client_channel(&service, &verifier, &mut rng);
        let (mut channel_b, connection_b) = client_channel(&service, &verifier, &mut rng);

        let conn_a = service
            .connections
            .lock()
            .get(&connection_a.0)
            .cloned()
            .unwrap();
        let _busy_a = conn_a.lock(); // connection A is mid-record
        let record = channel_b.send(&encode_request(&Request::Register {
            identity_key: AeadKey::from_bytes([9u8; 16]),
        }));
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let result = service.handle_record(connection_b, &record);
                tx.send(result).unwrap();
            });
            let response = rx
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("connection B must not wait behind connection A")
                .unwrap();
            let plaintext = channel_b.recv(&response.0).unwrap();
            assert!(matches!(
                decode_response(&plaintext).unwrap(),
                Response::Registered(_)
            ));
        });
    }

    #[test]
    fn concurrent_connections_complete_all_their_round_trips() {
        let (service, verifier) = service_fixture();
        let mut rng = SessionRng::from_seed(14);
        let mut sessions = Vec::new();
        for seed in 0..4u8 {
            let (channel, connection) = client_channel(&service, &verifier, &mut rng);
            sessions.push((channel, connection, seed));
        }
        std::thread::scope(|scope| {
            for (mut channel, connection, seed) in sessions {
                let service = &service;
                scope.spawn(move || {
                    for round in 0..25u8 {
                        let record = channel.send(&encode_request(&Request::Register {
                            identity_key: AeadKey::from_bytes([seed.wrapping_add(round); 16]),
                        }));
                        let (response, _) = service.handle_record(connection, &record).unwrap();
                        let plaintext = channel.recv(&response).unwrap();
                        assert!(matches!(
                            decode_response(&plaintext).unwrap(),
                            Response::Registered(_)
                        ));
                    }
                });
            }
        });
    }

    #[test]
    fn failed_attestations_do_not_leak_tcs_slots() {
        // Regression pin for the `respond(...)` error path: each rejected
        // handshake must release the TCS it entered, or repeated attestation
        // failures would exhaust the enclave and lock every real client out.
        let (service, verifier) = service_fixture();
        let mut rng = SessionRng::from_seed(15);

        // A rogue platform provisioned by a *different* authority: its quote
        // does not verify under the service's root of trust.
        let rogue_authority = AttestationAuthority::new(99);
        rogue_authority.register_platform("rogue-node", AttestationScheme::EcdsaDcap);
        let rogue_platform = SgxPlatform::paper_sgx2_node("rogue-node");
        let rogue_enclave = Arc::new(
            Enclave::launch(
                &rogue_platform,
                &rogue_authority,
                CodeIdentity::new("rogue", b"rogue code".to_vec(), "1.0"),
                EnclaveConfig::new(64 * MB, 8),
                1,
            )
            .unwrap()
            .0,
        );
        // Twice the TCS budget of failures: with the leak, slot 9 onwards
        // could never have been entered.
        for _ in 0..16 {
            let (initiator, _) =
                HandshakeInitiator::new_attested(&rogue_enclave, &mut rng).unwrap();
            let result = service.accept_connection(&initiator.hello(), &mut rng);
            assert!(matches!(result, Err(KeyServiceError::AttestationFailed(_))));
        }
        assert_eq!(service.open_connections(), 0);

        // Exhaust/fail/retry lifecycle: all 8 TCSs still open cleanly, the
        // ninth is refused, and closing one frees a slot.
        let mut connections = Vec::new();
        for _ in 0..8 {
            let (_, connection) = client_channel(&service, &verifier, &mut rng);
            connections.push(connection);
        }
        let initiator = HandshakeInitiator::new_client(&mut rng);
        assert!(service
            .accept_connection(&initiator.hello(), &mut rng)
            .is_err());
        service.close_connection(connections.pop().unwrap());
        let (_, _connection) = client_channel(&service, &verifier, &mut rng);
        assert_eq!(service.open_connections(), 8);
    }
}
