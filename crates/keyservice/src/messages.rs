//! Encrypted request payloads exchanged between owners / users and the
//! KeyService enclave.
//!
//! Algorithm 1's inputs such as `[M_oid ∥ K_M]_{K_oid}` are byte strings
//! encrypted (and authenticated) under the party's long-term identity key;
//! this module defines their structure, serialization and the seal/open
//! helpers.  Because the payloads are AEAD-protected, only the holder of the
//! identity key can produce them, which is exactly the authorization argument
//! of the paper's security analysis ("the functions that modify ACM and KS_R
//! check that the updates are authorized, i.e. signed with the long-term key
//! of the model owner ... and the user").

use crate::error::KeyServiceError;
use crate::keystore::PartyId;
use rand::RngCore;
use sesemi_crypto::aead::{AeadKey, SealedBox, KEY_LEN};
use sesemi_crypto::gcm::Aes128Gcm;
use sesemi_enclave::Measurement;
use sesemi_inference::ModelId;

const OWNER_AAD: &[u8] = b"sesemi-keyservice-owner-request";
const USER_AAD: &[u8] = b"sesemi-keyservice-user-request";

/// Requests a model owner can make.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OwnerRequest {
    /// `ADD_MODEL_KEY`: register the decryption key for a model.
    AddModelKey {
        /// Model id.
        model: ModelId,
        /// Model decryption key `K_M`.
        model_key: AeadKey,
    },
    /// `GRANT_ACCESS`: authorize a user to run the model inside a specific
    /// enclave identity.
    GrantAccess {
        /// Model id.
        model: ModelId,
        /// Enclave identity `E_S` allowed to receive the keys.
        enclave: Measurement,
        /// The authorized user.
        user: PartyId,
    },
    /// `REVOKE_ACCESS`: withdraw a previously granted
    /// ⟨model, enclave, user⟩ authorization.  Subsequent `KEY_PROVISIONING`
    /// for the tuple is refused; keys already provisioned to running enclaves
    /// stay valid until those enclaves terminate (the paper's access control
    /// is checked at provisioning time).
    RevokeAccess {
        /// Model id.
        model: ModelId,
        /// Enclave identity `E_S` whose authorization is withdrawn.
        enclave: Measurement,
        /// The user whose access is revoked.
        user: PartyId,
    },
}

/// Requests a model user can make.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UserRequest {
    /// `ADD_REQ_KEY`: register the request key for a (model, enclave) pair.
    AddRequestKey {
        /// Model id.
        model: ModelId,
        /// Enclave identity `E_S` allowed to receive the key.
        enclave: Measurement,
        /// Request key `K_R`.
        request_key: AeadKey,
    },
}

fn write_model_id(out: &mut Vec<u8>, model: &ModelId) {
    let bytes = model.as_str().as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_model_id(bytes: &[u8], offset: &mut usize) -> Result<ModelId, KeyServiceError> {
    let len = read_u32(bytes, offset)? as usize;
    if len > 1024 || *offset + len > bytes.len() {
        return Err(KeyServiceError::InvalidPayload);
    }
    let value = std::str::from_utf8(&bytes[*offset..*offset + len])
        .map_err(|_| KeyServiceError::InvalidPayload)?;
    *offset += len;
    Ok(ModelId::new(value))
}

fn read_u32(bytes: &[u8], offset: &mut usize) -> Result<u32, KeyServiceError> {
    if *offset + 4 > bytes.len() {
        return Err(KeyServiceError::InvalidPayload);
    }
    let value = u32::from_le_bytes([
        bytes[*offset],
        bytes[*offset + 1],
        bytes[*offset + 2],
        bytes[*offset + 3],
    ]);
    *offset += 4;
    Ok(value)
}

fn read_array<const N: usize>(
    bytes: &[u8],
    offset: &mut usize,
) -> Result<[u8; N], KeyServiceError> {
    if *offset + N > bytes.len() {
        return Err(KeyServiceError::InvalidPayload);
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[*offset..*offset + N]);
    *offset += N;
    Ok(out)
}

fn ensure_exhausted(bytes: &[u8], offset: usize) -> Result<(), KeyServiceError> {
    if offset == bytes.len() {
        Ok(())
    } else {
        Err(KeyServiceError::InvalidPayload)
    }
}

fn measurement_from_bytes(bytes: [u8; 32]) -> Measurement {
    Measurement::from_digest(sesemi_crypto::sha256::Digest::from(bytes))
}

impl OwnerRequest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            OwnerRequest::AddModelKey { model, model_key } => {
                out.push(0);
                write_model_id(&mut out, model);
                out.extend_from_slice(model_key.as_bytes());
            }
            OwnerRequest::GrantAccess {
                model,
                enclave,
                user,
            } => {
                out.push(1);
                write_model_id(&mut out, model);
                out.extend_from_slice(enclave.as_bytes());
                out.extend_from_slice(user.as_bytes());
            }
            OwnerRequest::RevokeAccess {
                model,
                enclave,
                user,
            } => {
                out.push(2);
                write_model_id(&mut out, model);
                out.extend_from_slice(enclave.as_bytes());
                out.extend_from_slice(user.as_bytes());
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, KeyServiceError> {
        if bytes.is_empty() {
            return Err(KeyServiceError::InvalidPayload);
        }
        let mut offset = 1usize;
        match bytes[0] {
            0 => {
                let model = read_model_id(bytes, &mut offset)?;
                let key: [u8; KEY_LEN] = read_array(bytes, &mut offset)?;
                ensure_exhausted(bytes, offset)?;
                Ok(OwnerRequest::AddModelKey {
                    model,
                    model_key: AeadKey::from_bytes(key),
                })
            }
            1 | 2 => {
                let model = read_model_id(bytes, &mut offset)?;
                let enclave: [u8; 32] = read_array(bytes, &mut offset)?;
                let user: [u8; 32] = read_array(bytes, &mut offset)?;
                ensure_exhausted(bytes, offset)?;
                let enclave = measurement_from_bytes(enclave);
                let user = PartyId::from_bytes(user);
                if bytes[0] == 1 {
                    Ok(OwnerRequest::GrantAccess {
                        model,
                        enclave,
                        user,
                    })
                } else {
                    Ok(OwnerRequest::RevokeAccess {
                        model,
                        enclave,
                        user,
                    })
                }
            }
            _ => Err(KeyServiceError::InvalidPayload),
        }
    }

    /// Encrypts the request under the owner's long-term identity key.
    pub fn seal<R: RngCore>(&self, identity_key: &AeadKey, rng: &mut R) -> Vec<u8> {
        let cipher = Aes128Gcm::new(identity_key);
        SealedBox::seal(&cipher, rng, &self.encode(), OWNER_AAD).to_bytes()
    }

    /// Decrypts and parses a sealed owner request (inside the enclave).
    pub fn open(identity_key: &AeadKey, sealed: &[u8]) -> Result<Self, KeyServiceError> {
        let cipher = Aes128Gcm::new(identity_key);
        let parsed = SealedBox::from_bytes(sealed).map_err(|_| KeyServiceError::InvalidPayload)?;
        if parsed.aad != OWNER_AAD {
            return Err(KeyServiceError::InvalidPayload);
        }
        let plaintext = parsed
            .open(&cipher)
            .map_err(|_| KeyServiceError::InvalidPayload)?;
        Self::decode(&plaintext)
    }
}

impl UserRequest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            UserRequest::AddRequestKey {
                model,
                enclave,
                request_key,
            } => {
                out.push(0);
                write_model_id(&mut out, model);
                out.extend_from_slice(enclave.as_bytes());
                out.extend_from_slice(request_key.as_bytes());
            }
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self, KeyServiceError> {
        if bytes.is_empty() || bytes[0] != 0 {
            return Err(KeyServiceError::InvalidPayload);
        }
        let mut offset = 1usize;
        let model = read_model_id(bytes, &mut offset)?;
        let enclave: [u8; 32] = read_array(bytes, &mut offset)?;
        let key: [u8; KEY_LEN] = read_array(bytes, &mut offset)?;
        ensure_exhausted(bytes, offset)?;
        Ok(UserRequest::AddRequestKey {
            model,
            enclave: measurement_from_bytes(enclave),
            request_key: AeadKey::from_bytes(key),
        })
    }

    /// Encrypts the request under the user's long-term identity key.
    pub fn seal<R: RngCore>(&self, identity_key: &AeadKey, rng: &mut R) -> Vec<u8> {
        let cipher = Aes128Gcm::new(identity_key);
        SealedBox::seal(&cipher, rng, &self.encode(), USER_AAD).to_bytes()
    }

    /// Decrypts and parses a sealed user request (inside the enclave).
    pub fn open(identity_key: &AeadKey, sealed: &[u8]) -> Result<Self, KeyServiceError> {
        let cipher = Aes128Gcm::new(identity_key);
        let parsed = SealedBox::from_bytes(sealed).map_err(|_| KeyServiceError::InvalidPayload)?;
        if parsed.aad != USER_AAD {
            return Err(KeyServiceError::InvalidPayload);
        }
        let plaintext = parsed
            .open(&cipher)
            .map_err(|_| KeyServiceError::InvalidPayload)?;
        Self::decode(&plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesemi_crypto::rng::SessionRng;
    use sesemi_enclave::CodeIdentity;

    fn enclave_id() -> Measurement {
        CodeIdentity::new("semirt", b"code".to_vec(), "1").measure()
    }

    #[test]
    fn owner_requests_roundtrip() {
        let mut rng = SessionRng::from_seed(1);
        let identity = AeadKey::from_bytes([5u8; 16]);
        let user = PartyId::from_identity_key(&AeadKey::from_bytes([6u8; 16]));
        let requests = [
            OwnerRequest::AddModelKey {
                model: ModelId::new("hospital/diagnosis"),
                model_key: AeadKey::from_bytes([7u8; 16]),
            },
            OwnerRequest::GrantAccess {
                model: ModelId::new("hospital/diagnosis"),
                enclave: enclave_id(),
                user,
            },
            OwnerRequest::RevokeAccess {
                model: ModelId::new("hospital/diagnosis"),
                enclave: enclave_id(),
                user,
            },
        ];
        for request in requests {
            let sealed = request.seal(&identity, &mut rng);
            let opened = OwnerRequest::open(&identity, &sealed).unwrap();
            assert_eq!(opened, request);
        }
    }

    #[test]
    fn user_requests_roundtrip() {
        let mut rng = SessionRng::from_seed(2);
        let identity = AeadKey::from_bytes([9u8; 16]);
        let request = UserRequest::AddRequestKey {
            model: ModelId::new("m0"),
            enclave: enclave_id(),
            request_key: AeadKey::from_bytes([3u8; 16]),
        };
        let sealed = request.seal(&identity, &mut rng);
        assert_eq!(UserRequest::open(&identity, &sealed).unwrap(), request);
    }

    #[test]
    fn wrong_key_or_tampering_is_rejected() {
        let mut rng = SessionRng::from_seed(3);
        let identity = AeadKey::from_bytes([1u8; 16]);
        let request = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: AeadKey::from_bytes([2u8; 16]),
        };
        let sealed = request.seal(&identity, &mut rng);

        // Wrong identity key.
        let wrong = AeadKey::from_bytes([4u8; 16]);
        assert_eq!(
            OwnerRequest::open(&wrong, &sealed),
            Err(KeyServiceError::InvalidPayload)
        );
        // Tampered ciphertext.
        let mut tampered = sealed.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 1;
        assert_eq!(
            OwnerRequest::open(&identity, &tampered),
            Err(KeyServiceError::InvalidPayload)
        );
        // Truncated.
        assert_eq!(
            OwnerRequest::open(&identity, &sealed[..10]),
            Err(KeyServiceError::InvalidPayload)
        );
        // Garbage.
        assert_eq!(
            OwnerRequest::open(&identity, b"junk"),
            Err(KeyServiceError::InvalidPayload)
        );
    }

    #[test]
    fn owner_and_user_payloads_are_domain_separated() {
        // An owner payload cannot be replayed as a user payload even when the
        // same identity key is (incorrectly) used for both roles.
        let mut rng = SessionRng::from_seed(4);
        let identity = AeadKey::from_bytes([8u8; 16]);
        let owner_payload = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: AeadKey::from_bytes([2u8; 16]),
        }
        .seal(&identity, &mut rng);
        assert_eq!(
            UserRequest::open(&identity, &owner_payload),
            Err(KeyServiceError::InvalidPayload)
        );
    }

    #[test]
    fn decode_rejects_unknown_tags_and_trailing_bytes() {
        assert!(OwnerRequest::decode(&[9, 0, 0, 0, 0]).is_err());
        assert!(OwnerRequest::decode(&[]).is_err());
        let mut encoded = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: AeadKey::from_bytes([0u8; 16]),
        }
        .encode();
        encoded.push(0);
        assert!(OwnerRequest::decode(&encoded).is_err());
        assert!(UserRequest::decode(&[1]).is_err());
    }
}
