//! The in-enclave key store and Algorithm 1.
//!
//! Everything in this module is state that lives *inside* the KeyService
//! enclave; the untrusted host only ever sees the encrypted payloads defined
//! in [`crate::messages`].

use crate::error::KeyServiceError;
use crate::messages::{OwnerRequest, UserRequest};
use sesemi_crypto::aead::AeadKey;
use sesemi_crypto::sha256::{sha256, Digest};
use sesemi_enclave::Measurement;
use sesemi_inference::ModelId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An owner or user identity: `id = SHA-256(K_id)` (Algorithm 1, line 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId([u8; 32]);

impl PartyId {
    /// Derives the identity from a long-term key.
    #[must_use]
    pub fn from_identity_key(key: &AeadKey) -> Self {
        PartyId(*sha256(key.as_bytes()).as_bytes())
    }

    /// Raw bytes of the identity.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Builds a party id from raw bytes (wire decoding).
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        PartyId(bytes)
    }

    /// Short fingerprint for logs.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "party-{}", self.fingerprint())
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "party-{}", self.fingerprint())
    }
}

/// The access-control tuple ⟨M_oid ∥ E_S ∥ uid⟩ used by both `KS_R` and
/// `ACM`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AccessTuple {
    /// Model id.
    pub model: ModelId,
    /// Enclave identity allowed to receive the keys.
    pub enclave: Measurement,
    /// User id.
    pub user: PartyId,
}

/// The KeyService enclave state (Algorithm 1's `KS_I`, `KS_M`, `KS_R`,
/// `ACM`).
#[derive(Debug, Default)]
pub struct KeyStore {
    /// ⟨id, K_id⟩ — registered identities.
    ks_i: HashMap<PartyId, AeadKey>,
    /// ⟨M_oid, (owner, K_M)⟩ — model keys, remembering which owner added
    /// them so a different owner cannot overwrite them.
    ks_m: HashMap<ModelId, (PartyId, AeadKey)>,
    /// ⟨M_oid ∥ E_S ∥ uid, K_R⟩ — request keys.
    ks_r: HashMap<AccessTuple, AeadKey>,
    /// ⟨M_oid ∥ E_S ∥ uid⟩ — owner grants.
    acm: HashSet<AccessTuple>,
    /// Digests of every accepted sealed owner/user payload, for replay
    /// rejection: without this, an adversary who recorded a sealed
    /// `GRANT_ACCESS` could replay it after the owner's `REVOKE_ACCESS` and
    /// silently restore the grant.  Sealed payloads embed a random AEAD
    /// nonce, so two independently sealed copies of the same request never
    /// collide — only true byte-for-byte replays are refused.
    seen_payloads: HashSet<(PartyId, Digest)>,
}

impl KeyStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// `USER_REGISTRATION(K_id)`: registers an owner or user identity key and
    /// returns the derived id.  Registration is idempotent for the same key.
    pub fn user_registration(&mut self, identity_key: AeadKey) -> PartyId {
        let id = PartyId::from_identity_key(&identity_key);
        self.ks_i.insert(id, identity_key);
        id
    }

    /// Whether a party is registered.
    #[must_use]
    pub fn is_registered(&self, party: &PartyId) -> bool {
        self.ks_i.contains_key(party)
    }

    fn identity_key(&self, party: &PartyId) -> Result<&AeadKey, KeyServiceError> {
        self.ks_i.get(party).ok_or(KeyServiceError::UnknownParty)
    }

    /// Rejects a sealed payload the store has already accepted from `party`
    /// (anti-replay); records fresh payloads.  Called only after the payload
    /// authenticated under the party's identity key, so the set tracks
    /// genuine requests, not attacker-controlled garbage.
    fn check_fresh(
        &mut self,
        party: PartyId,
        sealed_payload: &[u8],
    ) -> Result<(), KeyServiceError> {
        let digest = sha256(sealed_payload);
        if !self.seen_payloads.insert((party, digest)) {
            return Err(KeyServiceError::Conflict(
                "replayed owner/user request".to_string(),
            ));
        }
        Ok(())
    }

    /// Handles an owner request (`ADD_MODEL_KEY` or `GRANT_ACCESS`).  The
    /// payload is encrypted under the owner's long-term key, so only a holder
    /// of that key can have produced it (Algorithm 1 lines 9–16).
    pub fn handle_owner_request(
        &mut self,
        owner: PartyId,
        sealed_payload: &[u8],
    ) -> Result<(), KeyServiceError> {
        let key = self.identity_key(&owner)?.clone();
        let request = OwnerRequest::open(&key, sealed_payload)?;
        self.check_fresh(owner, sealed_payload)?;
        match request {
            OwnerRequest::AddModelKey { model, model_key } => {
                match self.ks_m.get(&model) {
                    Some((existing_owner, _)) if *existing_owner != owner => {
                        // A different owner already registered this model id.
                        Err(KeyServiceError::Conflict(format!(
                            "model {model} is owned by another party"
                        )))
                    }
                    _ => {
                        self.ks_m.insert(model, (owner, model_key));
                        Ok(())
                    }
                }
            }
            OwnerRequest::GrantAccess {
                model,
                enclave,
                user,
            } => {
                // Only the owner of the model may grant access to it.
                match self.ks_m.get(&model) {
                    Some((existing_owner, _)) if *existing_owner == owner => {
                        self.acm.insert(AccessTuple {
                            model,
                            enclave,
                            user,
                        });
                        Ok(())
                    }
                    _ => Err(KeyServiceError::NotAuthorized),
                }
            }
            OwnerRequest::RevokeAccess {
                model,
                enclave,
                user,
            } => {
                // Only the owner of the model may revoke access to it.
                // Revoking a grant that does not exist is a no-op (revocation
                // is idempotent).
                match self.ks_m.get(&model) {
                    Some((existing_owner, _)) if *existing_owner == owner => {
                        self.acm.remove(&AccessTuple {
                            model,
                            enclave,
                            user,
                        });
                        Ok(())
                    }
                    _ => Err(KeyServiceError::NotAuthorized),
                }
            }
        }
    }

    /// Handles a user request (`ADD_REQ_KEY`), Algorithm 1 lines 17–20.
    pub fn handle_user_request(
        &mut self,
        user: PartyId,
        sealed_payload: &[u8],
    ) -> Result<(), KeyServiceError> {
        let key = self.identity_key(&user)?.clone();
        let request = UserRequest::open(&key, sealed_payload)?;
        self.check_fresh(user, sealed_payload)?;
        match request {
            UserRequest::AddRequestKey {
                model,
                enclave,
                request_key,
            } => {
                self.ks_r.insert(
                    AccessTuple {
                        model,
                        enclave,
                        user,
                    },
                    request_key,
                );
                Ok(())
            }
        }
    }

    /// `KEY_PROVISIONING(uid, M_oid, RAReport)`: returns `(K_M, K_R)` iff the
    /// attested enclave identity is authorized by *both* the owner's grant
    /// (`ACM`) and the user's request-key binding (`KS_R`), Algorithm 1
    /// lines 21–26.
    pub fn key_provisioning(
        &self,
        user: PartyId,
        model: &ModelId,
        attested_enclave: Measurement,
    ) -> Result<(AeadKey, AeadKey), KeyServiceError> {
        let tuple = AccessTuple {
            model: model.clone(),
            enclave: attested_enclave,
            user,
        };
        if !self.acm.contains(&tuple) {
            return Err(KeyServiceError::NotAuthorized);
        }
        let request_key = self
            .ks_r
            .get(&tuple)
            .ok_or(KeyServiceError::NotAuthorized)?
            .clone();
        let model_key = self
            .ks_m
            .get(model)
            .map(|(_, key)| key.clone())
            .ok_or(KeyServiceError::NotAuthorized)?;
        Ok((model_key, request_key))
    }

    /// Number of registered parties.
    #[must_use]
    pub fn registered_parties(&self) -> usize {
        self.ks_i.len()
    }

    /// Number of registered model keys.
    #[must_use]
    pub fn registered_models(&self) -> usize {
        self.ks_m.len()
    }

    /// Number of stored request keys.
    #[must_use]
    pub fn registered_request_keys(&self) -> usize {
        self.ks_r.len()
    }

    /// Number of access-control grants.
    #[must_use]
    pub fn grants(&self) -> usize {
        self.acm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{OwnerRequest, UserRequest};
    use sesemi_crypto::rng::SessionRng;
    use sesemi_enclave::CodeIdentity;

    fn key(seed: u8) -> AeadKey {
        AeadKey::from_bytes([seed; 16])
    }

    fn enclave_id(tag: &str) -> Measurement {
        CodeIdentity::new(tag, tag.as_bytes().to_vec(), "1").measure()
    }

    struct World {
        store: KeyStore,
        owner: PartyId,
        owner_key: AeadKey,
        user: PartyId,
        user_key: AeadKey,
        rng: SessionRng,
    }

    fn world() -> World {
        let mut store = KeyStore::new();
        let owner_key = key(1);
        let user_key = key(2);
        let owner = store.user_registration(owner_key.clone());
        let user = store.user_registration(user_key.clone());
        World {
            store,
            owner,
            owner_key,
            user,
            user_key,
            rng: SessionRng::from_seed(99),
        }
    }

    fn provision_setup(w: &mut World, model: &str, enclave: Measurement) -> (AeadKey, AeadKey) {
        let model_id = ModelId::new(model);
        let model_key = key(10);
        let request_key = key(20);
        let add_model = OwnerRequest::AddModelKey {
            model: model_id.clone(),
            model_key: model_key.clone(),
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &add_model).unwrap();

        let grant = OwnerRequest::GrantAccess {
            model: model_id.clone(),
            enclave,
            user: w.user,
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &grant).unwrap();

        let add_req = UserRequest::AddRequestKey {
            model: model_id,
            enclave,
            request_key: request_key.clone(),
        }
        .seal(&w.user_key, &mut w.rng);
        w.store.handle_user_request(w.user, &add_req).unwrap();
        (model_key, request_key)
    }

    #[test]
    fn registration_derives_sha256_identity() {
        let mut store = KeyStore::new();
        let identity_key = key(7);
        let id = store.user_registration(identity_key.clone());
        assert_eq!(id, PartyId::from_identity_key(&identity_key));
        assert!(store.is_registered(&id));
        assert_eq!(store.registered_parties(), 1);
        // Idempotent for the same key.
        assert_eq!(store.user_registration(identity_key), id);
        assert_eq!(store.registered_parties(), 1);
    }

    #[test]
    fn full_authorized_provisioning_flow() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        let (model_key, request_key) = provision_setup(&mut w, "diagnosis", enclave);
        let (km, kr) = w
            .store
            .key_provisioning(w.user, &ModelId::new("diagnosis"), enclave)
            .unwrap();
        assert_eq!(km, model_key);
        assert_eq!(kr, request_key);
        assert_eq!(w.store.registered_models(), 1);
        assert_eq!(w.store.registered_request_keys(), 1);
        assert_eq!(w.store.grants(), 1);
    }

    #[test]
    fn provisioning_fails_without_owner_grant() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        let model_id = ModelId::new("diagnosis");
        // Owner adds the model key but grants nothing.
        let add_model = OwnerRequest::AddModelKey {
            model: model_id.clone(),
            model_key: key(10),
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &add_model).unwrap();
        // User adds a request key.
        let add_req = UserRequest::AddRequestKey {
            model: model_id.clone(),
            enclave,
            request_key: key(20),
        }
        .seal(&w.user_key, &mut w.rng);
        w.store.handle_user_request(w.user, &add_req).unwrap();

        assert_eq!(
            w.store.key_provisioning(w.user, &model_id, enclave),
            Err(KeyServiceError::NotAuthorized)
        );
    }

    #[test]
    fn provisioning_fails_without_user_request_key() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        let model_id = ModelId::new("diagnosis");
        let add_model = OwnerRequest::AddModelKey {
            model: model_id.clone(),
            model_key: key(10),
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &add_model).unwrap();
        let grant = OwnerRequest::GrantAccess {
            model: model_id.clone(),
            enclave,
            user: w.user,
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &grant).unwrap();

        assert_eq!(
            w.store.key_provisioning(w.user, &model_id, enclave),
            Err(KeyServiceError::NotAuthorized)
        );
    }

    #[test]
    fn provisioning_fails_for_wrong_enclave_identity() {
        let mut w = world();
        let good_enclave = enclave_id("semirt");
        provision_setup(&mut w, "diagnosis", good_enclave);
        // A different (e.g. tampered or differently-configured) enclave asks
        // for the keys.
        let evil_enclave = enclave_id("semirt-modified");
        assert_eq!(
            w.store
                .key_provisioning(w.user, &ModelId::new("diagnosis"), evil_enclave),
            Err(KeyServiceError::NotAuthorized)
        );
    }

    #[test]
    fn provisioning_fails_for_unauthorized_user() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        provision_setup(&mut w, "diagnosis", enclave);
        let other_key = key(3);
        let other_user = w.store.user_registration(other_key);
        assert_eq!(
            w.store
                .key_provisioning(other_user, &ModelId::new("diagnosis"), enclave),
            Err(KeyServiceError::NotAuthorized)
        );
    }

    #[test]
    fn unregistered_parties_cannot_submit_requests() {
        let mut w = world();
        let ghost_key = key(9);
        let ghost = PartyId::from_identity_key(&ghost_key);
        let payload = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: key(10),
        }
        .seal(&ghost_key, &mut w.rng);
        assert_eq!(
            w.store.handle_owner_request(ghost, &payload),
            Err(KeyServiceError::UnknownParty)
        );
    }

    #[test]
    fn payload_encrypted_with_wrong_key_is_rejected() {
        let mut w = world();
        // An attacker (who doesn't know the owner's key) forges a payload
        // encrypted with some other key and submits it under the owner's id.
        let attacker_key = key(66);
        let payload = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: key(10),
        }
        .seal(&attacker_key, &mut w.rng);
        assert_eq!(
            w.store.handle_owner_request(w.owner, &payload),
            Err(KeyServiceError::InvalidPayload)
        );
    }

    #[test]
    fn users_cannot_grant_access_to_models_they_do_not_own() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        // Owner registers the model.
        let add_model = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: key(10),
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &add_model).unwrap();

        // A second "owner" (actually the user acting as an owner) tries to
        // grant themselves access to the model they do not own.
        let malicious_grant = OwnerRequest::GrantAccess {
            model: ModelId::new("m"),
            enclave,
            user: w.user,
        }
        .seal(&w.user_key, &mut w.rng);
        assert_eq!(
            w.store.handle_owner_request(w.user, &malicious_grant),
            Err(KeyServiceError::NotAuthorized)
        );
    }

    #[test]
    fn a_different_owner_cannot_overwrite_a_model_key() {
        let mut w = world();
        let add_model = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: key(10),
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &add_model).unwrap();

        let other_owner_key = key(4);
        let other_owner = w.store.user_registration(other_owner_key.clone());
        let overwrite = OwnerRequest::AddModelKey {
            model: ModelId::new("m"),
            model_key: key(11),
        }
        .seal(&other_owner_key, &mut w.rng);
        assert!(matches!(
            w.store.handle_owner_request(other_owner, &overwrite),
            Err(KeyServiceError::Conflict(_))
        ));
    }

    #[test]
    fn owner_can_rotate_their_own_model_key() {
        let mut w = world();
        for seed in [10u8, 11] {
            let payload = OwnerRequest::AddModelKey {
                model: ModelId::new("m"),
                model_key: key(seed),
            }
            .seal(&w.owner_key, &mut w.rng);
            w.store.handle_owner_request(w.owner, &payload).unwrap();
        }
        assert_eq!(w.store.registered_models(), 1);
    }

    #[test]
    fn revocation_removes_the_grant_and_is_owner_only() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        provision_setup(&mut w, "diagnosis", enclave);
        let model_id = ModelId::new("diagnosis");
        assert!(w.store.key_provisioning(w.user, &model_id, enclave).is_ok());

        // A non-owner cannot revoke.
        let revoke = OwnerRequest::RevokeAccess {
            model: model_id.clone(),
            enclave,
            user: w.user,
        };
        let forged = revoke.clone().seal(&w.user_key, &mut w.rng);
        assert_eq!(
            w.store.handle_owner_request(w.user, &forged),
            Err(KeyServiceError::NotAuthorized)
        );
        // The grant is still in place after the failed revocation.
        assert!(w.store.key_provisioning(w.user, &model_id, enclave).is_ok());

        // The owner revokes: provisioning is refused from then on.
        let sealed = revoke.seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &sealed).unwrap();
        assert_eq!(w.store.grants(), 0);
        assert_eq!(
            w.store.key_provisioning(w.user, &model_id, enclave),
            Err(KeyServiceError::NotAuthorized)
        );

        // Revocation is idempotent.
        let again = OwnerRequest::RevokeAccess {
            model: model_id,
            enclave,
            user: w.user,
        }
        .seal(&w.owner_key, &mut w.rng);
        assert_eq!(w.store.handle_owner_request(w.owner, &again), Ok(()));
    }

    #[test]
    fn replayed_grants_cannot_undo_a_revocation() {
        // The untrusted host records the owner's sealed GRANT_ACCESS bytes.
        // After the owner revokes, replaying the recorded ciphertext must not
        // restore the grant: byte-identical payloads are refused.
        let mut w = world();
        let enclave = enclave_id("semirt");
        let model_id = ModelId::new("diagnosis");
        let add_model = OwnerRequest::AddModelKey {
            model: model_id.clone(),
            model_key: key(10),
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &add_model).unwrap();

        let recorded_grant = OwnerRequest::GrantAccess {
            model: model_id.clone(),
            enclave,
            user: w.user,
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store
            .handle_owner_request(w.owner, &recorded_grant)
            .unwrap();

        let revoke = OwnerRequest::RevokeAccess {
            model: model_id.clone(),
            enclave,
            user: w.user,
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &revoke).unwrap();
        assert_eq!(w.store.grants(), 0);

        // Replay of the recorded grant: refused, grant stays revoked.
        assert!(matches!(
            w.store.handle_owner_request(w.owner, &recorded_grant),
            Err(KeyServiceError::Conflict(_))
        ));
        assert_eq!(w.store.grants(), 0);

        // A *fresh* re-grant from the owner (new nonce) still works.
        let regrant = OwnerRequest::GrantAccess {
            model: model_id,
            enclave,
            user: w.user,
        }
        .seal(&w.owner_key, &mut w.rng);
        w.store.handle_owner_request(w.owner, &regrant).unwrap();
        assert_eq!(w.store.grants(), 1);
    }

    #[test]
    fn replayed_user_requests_are_rejected() {
        let mut w = world();
        let enclave = enclave_id("semirt");
        let add_req = UserRequest::AddRequestKey {
            model: ModelId::new("m"),
            enclave,
            request_key: key(20),
        }
        .seal(&w.user_key, &mut w.rng);
        w.store.handle_user_request(w.user, &add_req).unwrap();
        assert!(matches!(
            w.store.handle_user_request(w.user, &add_req),
            Err(KeyServiceError::Conflict(_))
        ));
    }

    #[test]
    fn party_id_formatting() {
        let id = PartyId::from_identity_key(&key(1));
        assert!(id.to_string().starts_with("party-"));
        assert_eq!(id.fingerprint().len(), 8);
        assert_eq!(PartyId::from_bytes(*id.as_bytes()), id);
    }
}
