//! Owner-side and user-side clients for the KeyService.
//!
//! These implement the key-setup stage of the paper's workflow (§III step 1):
//! the party attests KeyService (pinning its published measurement `E_K`),
//! registers its long-term identity key over the RA-TLS channel, and then
//! submits sealed owner/user operations.
//!
//! Transport is in-process: a client talks to a [`KeyService`] value
//! directly, exchanging the same encrypted records that would travel over the
//! network in a deployment.

use crate::error::KeyServiceError;
use crate::keystore::PartyId;
use crate::messages::{OwnerRequest, UserRequest};
use crate::service::{
    decode_response, encode_request, ConnectionId, KeyService, Request, Response,
};
use rand::RngCore;
use sesemi_crypto::aead::AeadKey;
use sesemi_enclave::ratls::{HandshakeInitiator, SecureChannel};
use sesemi_enclave::{Measurement, QuoteVerifier};
use sesemi_inference::ModelId;

/// Shared connection state for both client roles.
struct Session {
    identity_key: AeadKey,
    party: Option<PartyId>,
    channel: SecureChannel,
    connection: ConnectionId,
}

impl Session {
    fn connect<R: RngCore>(
        service: &KeyService,
        verifier: &QuoteVerifier,
        expected_keyservice: &Measurement,
        identity_key: AeadKey,
        rng: &mut R,
    ) -> Result<Self, KeyServiceError> {
        let initiator = HandshakeInitiator::new_client(rng);
        let (responder_hello, connection, _quote_latency) =
            service.accept_connection(&initiator.hello(), rng)?;
        let channel = initiator
            .finish(&responder_hello, verifier, expected_keyservice)
            .map_err(KeyServiceError::from)?;
        Ok(Session {
            identity_key,
            party: None,
            channel,
            connection,
        })
    }

    fn call(
        &mut self,
        service: &KeyService,
        request: &Request,
    ) -> Result<Response, KeyServiceError> {
        let record = self.channel.send(&encode_request(request));
        let (response_record, _latency) = service.handle_record(self.connection, &record)?;
        let plaintext = self
            .channel
            .recv(&response_record)
            .map_err(|e| KeyServiceError::Channel(e.to_string()))?;
        decode_response(&plaintext)
    }

    fn register(&mut self, service: &KeyService) -> Result<PartyId, KeyServiceError> {
        let response = self.call(
            service,
            &Request::Register {
                identity_key: self.identity_key.clone(),
            },
        )?;
        match response {
            Response::Registered(party) => {
                self.party = Some(party);
                Ok(party)
            }
            Response::Error(err) => Err(err),
            _ => Err(KeyServiceError::InvalidPayload),
        }
    }

    fn party(&self) -> Result<PartyId, KeyServiceError> {
        self.party.ok_or(KeyServiceError::UnknownParty)
    }
}

/// A model owner's client.
pub struct OwnerClient {
    session: Session,
}

impl OwnerClient {
    /// Connects to the KeyService, verifying its attested measurement.
    pub fn connect<R: RngCore>(
        service: &KeyService,
        verifier: &QuoteVerifier,
        expected_keyservice: &Measurement,
        identity_key: AeadKey,
        rng: &mut R,
    ) -> Result<Self, KeyServiceError> {
        Ok(OwnerClient {
            session: Session::connect(service, verifier, expected_keyservice, identity_key, rng)?,
        })
    }

    /// Registers the owner's identity key (`USER_REGISTRATION`).
    pub fn register(&mut self, service: &KeyService) -> Result<PartyId, KeyServiceError> {
        self.session.register(service)
    }

    /// The owner's registered identity, if `register` has been called.
    #[must_use]
    pub fn party(&self) -> Option<PartyId> {
        self.session.party
    }

    /// `ADD_MODEL_KEY`: registers the decryption key for a model.
    pub fn add_model_key<R: RngCore>(
        &mut self,
        service: &KeyService,
        model: &ModelId,
        model_key: &AeadKey,
        rng: &mut R,
    ) -> Result<(), KeyServiceError> {
        let owner = self.session.party()?;
        let payload = OwnerRequest::AddModelKey {
            model: model.clone(),
            model_key: model_key.clone(),
        }
        .seal(&self.session.identity_key, rng);
        match self
            .session
            .call(service, &Request::OwnerOp { owner, payload })?
        {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(err),
            _ => Err(KeyServiceError::InvalidPayload),
        }
    }

    /// `GRANT_ACCESS`: authorizes `user` to run `model` inside enclaves whose
    /// measurement is `enclave`.
    pub fn grant_access<R: RngCore>(
        &mut self,
        service: &KeyService,
        model: &ModelId,
        enclave: Measurement,
        user: PartyId,
        rng: &mut R,
    ) -> Result<(), KeyServiceError> {
        let owner = self.session.party()?;
        let payload = OwnerRequest::GrantAccess {
            model: model.clone(),
            enclave,
            user,
        }
        .seal(&self.session.identity_key, rng);
        match self
            .session
            .call(service, &Request::OwnerOp { owner, payload })?
        {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(err),
            _ => Err(KeyServiceError::InvalidPayload),
        }
    }

    /// `REVOKE_ACCESS`: withdraws a previously granted
    /// `(model, enclave, user)` authorization.
    pub fn revoke_access<R: RngCore>(
        &mut self,
        service: &KeyService,
        model: &ModelId,
        enclave: Measurement,
        user: PartyId,
        rng: &mut R,
    ) -> Result<(), KeyServiceError> {
        let owner = self.session.party()?;
        let payload = OwnerRequest::RevokeAccess {
            model: model.clone(),
            enclave,
            user,
        }
        .seal(&self.session.identity_key, rng);
        match self
            .session
            .call(service, &Request::OwnerOp { owner, payload })?
        {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(err),
            _ => Err(KeyServiceError::InvalidPayload),
        }
    }

    /// Closes the connection, releasing the KeyService-side TCS.
    pub fn disconnect(self, service: &KeyService) {
        service.close_connection(self.session.connection);
    }
}

/// A model user's client.
pub struct UserClient {
    session: Session,
}

impl UserClient {
    /// Connects to the KeyService, verifying its attested measurement.
    pub fn connect<R: RngCore>(
        service: &KeyService,
        verifier: &QuoteVerifier,
        expected_keyservice: &Measurement,
        identity_key: AeadKey,
        rng: &mut R,
    ) -> Result<Self, KeyServiceError> {
        Ok(UserClient {
            session: Session::connect(service, verifier, expected_keyservice, identity_key, rng)?,
        })
    }

    /// Registers the user's identity key (`USER_REGISTRATION`).
    pub fn register(&mut self, service: &KeyService) -> Result<PartyId, KeyServiceError> {
        self.session.register(service)
    }

    /// The user's registered identity, if `register` has been called.
    #[must_use]
    pub fn party(&self) -> Option<PartyId> {
        self.session.party
    }

    /// `ADD_REQ_KEY`: registers the request key for `(model, enclave)`.
    pub fn add_request_key<R: RngCore>(
        &mut self,
        service: &KeyService,
        model: &ModelId,
        enclave: Measurement,
        request_key: &AeadKey,
        rng: &mut R,
    ) -> Result<(), KeyServiceError> {
        let user = self.session.party()?;
        let payload = UserRequest::AddRequestKey {
            model: model.clone(),
            enclave,
            request_key: request_key.clone(),
        }
        .seal(&self.session.identity_key, rng);
        match self
            .session
            .call(service, &Request::UserOp { user, payload })?
        {
            Response::Ok => Ok(()),
            Response::Error(err) => Err(err),
            _ => Err(KeyServiceError::InvalidPayload),
        }
    }

    /// Closes the connection, releasing the KeyService-side TCS.
    pub fn disconnect(self, service: &KeyService) {
        service.close_connection(self.session.connection);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesemi_crypto::rng::SessionRng;
    use sesemi_enclave::attest::{AttestationAuthority, AttestationScheme};
    use sesemi_enclave::{CodeIdentity, Enclave, EnclaveConfig, SgxPlatform};
    use std::sync::Arc;

    const MB: u64 = 1024 * 1024;

    struct Fixture {
        service: KeyService,
        verifier: QuoteVerifier,
        semirt_measurement: Measurement,
    }

    fn fixture() -> Fixture {
        let platform = SgxPlatform::paper_sgx2_node("ks-node");
        let authority = AttestationAuthority::new(17);
        authority.register_platform("ks-node", AttestationScheme::EcdsaDcap);
        let enclave = Enclave::launch(
            &platform,
            &authority,
            CodeIdentity::new("keyservice", b"keyservice code".to_vec(), "1.0"),
            EnclaveConfig::new(64 * MB, 8),
            1,
        )
        .unwrap()
        .0;
        let verifier = authority.verifier();
        let service = KeyService::new(Arc::new(enclave), verifier.clone());
        let semirt_measurement =
            CodeIdentity::new("semirt", b"semirt code".to_vec(), "1.0").measure();
        Fixture {
            service,
            verifier,
            semirt_measurement,
        }
    }

    #[test]
    fn full_owner_and_user_setup_flow() {
        let fx = fixture();
        let mut rng = SessionRng::from_seed(5);
        let expected = fx.service.measurement();

        let mut owner = OwnerClient::connect(
            &fx.service,
            &fx.verifier,
            &expected,
            AeadKey::from_bytes([1u8; 16]),
            &mut rng,
        )
        .unwrap();
        let mut user = UserClient::connect(
            &fx.service,
            &fx.verifier,
            &expected,
            AeadKey::from_bytes([2u8; 16]),
            &mut rng,
        )
        .unwrap();
        assert_eq!(fx.service.open_connections(), 2);

        let owner_id = owner.register(&fx.service).unwrap();
        let user_id = user.register(&fx.service).unwrap();
        assert_eq!(owner.party(), Some(owner_id));
        assert_eq!(user.party(), Some(user_id));

        let model = ModelId::new("diagnosis");
        let model_key = AeadKey::from_bytes([7u8; 16]);
        let request_key = AeadKey::from_bytes([8u8; 16]);
        owner
            .add_model_key(&fx.service, &model, &model_key, &mut rng)
            .unwrap();
        owner
            .grant_access(
                &fx.service,
                &model,
                fx.semirt_measurement,
                user_id,
                &mut rng,
            )
            .unwrap();
        user.add_request_key(
            &fx.service,
            &model,
            fx.semirt_measurement,
            &request_key,
            &mut rng,
        )
        .unwrap();

        let (parties, models, request_keys, grants) = fx.service.store_stats();
        assert_eq!((parties, models, request_keys, grants), (2, 1, 1, 1));

        // Provisioning succeeds for the attested SeMIRT identity...
        let response = fx.service.handle_request(
            Request::Provision {
                user: user_id,
                model: model.clone(),
            },
            Some(fx.semirt_measurement),
        );
        assert_eq!(
            response,
            Response::Keys {
                model_key,
                request_key
            }
        );
        // ...but not for an unattested caller or a different enclave.
        let response = fx.service.handle_request(
            Request::Provision {
                user: user_id,
                model: model.clone(),
            },
            None,
        );
        assert!(matches!(
            response,
            Response::Error(KeyServiceError::AttestationFailed(_))
        ));
        let other = CodeIdentity::new("rogue", b"rogue".to_vec(), "1").measure();
        let response = fx.service.handle_request(
            Request::Provision {
                user: user_id,
                model,
            },
            Some(other),
        );
        assert_eq!(response, Response::Error(KeyServiceError::NotAuthorized));

        owner.disconnect(&fx.service);
        user.disconnect(&fx.service);
        assert_eq!(fx.service.open_connections(), 0);
    }

    #[test]
    fn operations_before_registration_fail() {
        let fx = fixture();
        let mut rng = SessionRng::from_seed(6);
        let mut owner = OwnerClient::connect(
            &fx.service,
            &fx.verifier,
            &fx.service.measurement(),
            AeadKey::from_bytes([3u8; 16]),
            &mut rng,
        )
        .unwrap();
        let err = owner
            .add_model_key(
                &fx.service,
                &ModelId::new("m"),
                &AeadKey::from_bytes([4u8; 16]),
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, KeyServiceError::UnknownParty);
    }

    #[test]
    fn connecting_with_a_wrong_pinned_measurement_fails() {
        let fx = fixture();
        let mut rng = SessionRng::from_seed(7);
        let wrong = CodeIdentity::new("not-keyservice", b"x".to_vec(), "1").measure();
        let result = OwnerClient::connect(
            &fx.service,
            &fx.verifier,
            &wrong,
            AeadKey::from_bytes([5u8; 16]),
            &mut rng,
        );
        assert!(matches!(result, Err(KeyServiceError::AttestationFailed(_))));
    }

    #[test]
    fn tcs_capacity_bounds_concurrent_connections() {
        let fx = fixture();
        let mut rng = SessionRng::from_seed(8);
        let mut clients = Vec::new();
        // The KeyService enclave was configured with 8 TCSs; one extra
        // connection must be rejected until one disconnects.
        for i in 0..8 {
            clients.push(
                OwnerClient::connect(
                    &fx.service,
                    &fx.verifier,
                    &fx.service.measurement(),
                    AeadKey::from_bytes([i as u8 + 1; 16]),
                    &mut rng,
                )
                .unwrap(),
            );
        }
        let overflow = OwnerClient::connect(
            &fx.service,
            &fx.verifier,
            &fx.service.measurement(),
            AeadKey::from_bytes([99u8; 16]),
            &mut rng,
        );
        assert!(overflow.is_err());
        clients.pop().unwrap().disconnect(&fx.service);
        let retry = OwnerClient::connect(
            &fx.service,
            &fx.verifier,
            &fx.service.measurement(),
            AeadKey::from_bytes([99u8; 16]),
            &mut rng,
        );
        assert!(retry.is_ok());
    }
}
