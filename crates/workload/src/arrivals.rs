//! Open-loop arrival processes: constant-rate Poisson and MMPP.

use sesemi_inference::ModelId;
use sesemi_sim::{SimDuration, SimRng, SimTime};

/// Priority tier of a request, consulted by admission-control policies under
/// saturation.  Ordered: `Batch < Standard < Premium`, so "prefer shedding
/// lower tiers" is a plain `Ord` comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Best-effort background traffic — first to be shed.
    Batch,
    /// Ordinary interactive traffic.
    #[default]
    Standard,
    /// Latency-critical traffic — shed last.
    Premium,
}

impl Tier {
    /// All tiers, lowest priority first.
    pub const ALL: [Tier; 3] = [Tier::Batch, Tier::Standard, Tier::Premium];

    /// Label used in tables and backlog breakdowns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Tier::Batch => "batch",
            Tier::Standard => "standard",
            Tier::Premium => "premium",
        }
    }

    /// Dense index (position in [`Tier::ALL`]) for per-tier counters.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One generated request arrival.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestArrival {
    /// When the request reaches the system.
    pub at: SimTime,
    /// The model it targets.
    pub model: ModelId,
    /// Index of the user issuing it (mapped to registered users by the
    /// harness).
    pub user_index: usize,
    /// Priority tier, read by admission-control policies (default
    /// [`Tier::Standard`]).
    pub tier: Tier,
    /// Absolute completion deadline, if the stream carries an SLO.  `None`
    /// means the request never expires.
    pub deadline: Option<SimTime>,
}

impl RequestArrival {
    /// An arrival with the default tier and no deadline — what every
    /// generator produces; streams with SLOs decorate afterwards.
    #[must_use]
    pub fn new(at: SimTime, model: ModelId, user_index: usize) -> Self {
        RequestArrival {
            at,
            model,
            user_index,
            tier: Tier::default(),
            deadline: None,
        }
    }

    /// Sets the priority tier.
    #[must_use]
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Sets an absolute completion deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// An open-loop arrival process for a single model / user stream.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals at a constant mean rate (requests per second).
    Poisson {
        /// Mean request rate.
        rate_per_sec: f64,
    },
    /// Markov-modulated Poisson process: the rate switches between states,
    /// dwelling in each state for an exponentially distributed time
    /// (the paper's workload "alternates the mean request rates between
    /// 20 rps and 40 rps").
    Mmpp {
        /// The per-state request rates.
        rates_per_sec: Vec<f64>,
        /// Mean dwell time in each state before switching.
        mean_dwell: SimDuration,
    },
    /// Deterministic arrivals at a fixed interval (used for warm-up phases
    /// and latency-vs-rate sweeps where jitter is undesirable).
    Constant {
        /// Fixed inter-arrival gap.
        interval: SimDuration,
    },
    /// Sinusoid-modulated Poisson arrivals — a compressed diurnal traffic
    /// curve: the instantaneous rate is
    /// `base_rate * (1 + amplitude * sin(2π t / period))`, sampled by
    /// thinning a homogeneous Poisson process at the peak rate.
    Diurnal {
        /// Mean request rate over a full period.
        base_rate: f64,
        /// Relative swing of the sinusoid in `[0, 1]` (1 means the trough
        /// reaches zero traffic).
        amplitude: f64,
        /// One full day-night cycle.
        period: SimDuration,
    },
}

impl ArrivalProcess {
    /// The paper's MMPP workload: mean rate alternating between 20 and 40
    /// requests per second (Fig. 13a), with ~100 s dwell times.
    #[must_use]
    pub fn paper_mmpp() -> Self {
        ArrivalProcess::Mmpp {
            rates_per_sec: vec![20.0, 40.0],
            mean_dwell: SimDuration::from_secs(100),
        }
    }

    /// Generates all arrivals in `[0, duration)` for `model`, using `rng`.
    pub fn generate(
        &self,
        model: &ModelId,
        user_index: usize,
        duration: SimDuration,
        rng: &mut SimRng,
    ) -> Vec<RequestArrival> {
        let horizon = SimTime::ZERO + duration;
        let mut arrivals = Vec::new();
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                let mut t = SimTime::ZERO + rng.exponential(*rate_per_sec);
                while t < horizon {
                    arrivals.push(RequestArrival::new(t, model.clone(), user_index));
                    t += rng.exponential(*rate_per_sec);
                }
            }
            ArrivalProcess::Mmpp {
                rates_per_sec,
                mean_dwell,
            } => {
                assert!(!rates_per_sec.is_empty(), "MMPP needs at least one state");
                let dwell_rate = 1.0 / mean_dwell.as_secs_f64().max(1e-9);
                let mut state = 0usize;
                let mut state_ends = SimTime::ZERO + rng.exponential(dwell_rate);
                let mut t = SimTime::ZERO;
                loop {
                    let rate = rates_per_sec[state];
                    t += rng.exponential(rate);
                    if t >= horizon {
                        break;
                    }
                    // Advance the modulating chain past `t`.
                    while t >= state_ends {
                        state = (state + 1) % rates_per_sec.len();
                        state_ends += rng.exponential(dwell_rate);
                    }
                    arrivals.push(RequestArrival::new(t, model.clone(), user_index));
                }
            }
            ArrivalProcess::Constant { interval } => {
                assert!(*interval > SimDuration::ZERO, "interval must be positive");
                let mut t = SimTime::ZERO + *interval;
                while t < horizon {
                    arrivals.push(RequestArrival::new(t, model.clone(), user_index));
                    t += *interval;
                }
            }
            ArrivalProcess::Diurnal {
                base_rate,
                amplitude,
                period,
            } => {
                assert!(
                    *base_rate > 0.0 && base_rate.is_finite(),
                    "base rate must be positive"
                );
                assert!(
                    (0.0..=1.0).contains(amplitude),
                    "amplitude must lie in [0, 1]"
                );
                assert!(*period > SimDuration::ZERO, "period must be positive");
                // Thinning (Lewis–Shedler): draw candidates at the peak rate
                // and keep each with probability rate(t) / peak — an exact
                // sampler for the nonhomogeneous process, still one rng
                // stream, still deterministic per seed.
                let peak = base_rate * (1.0 + amplitude);
                let omega = 2.0 * std::f64::consts::PI / period.as_secs_f64();
                let mut t = SimTime::ZERO;
                loop {
                    t += rng.exponential(peak);
                    if t >= horizon {
                        break;
                    }
                    let rate = base_rate * (1.0 + amplitude * (omega * t.as_secs_f64()).sin());
                    if rng.chance(rate / peak) {
                        arrivals.push(RequestArrival::new(t, model.clone(), user_index));
                    }
                }
            }
        }
        arrivals
    }

    /// Merges several pre-generated streams into one time-ordered trace.
    #[must_use]
    pub fn merge(streams: Vec<Vec<RequestArrival>>) -> Vec<RequestArrival> {
        let mut all: Vec<RequestArrival> = streams.into_iter().flatten().collect();
        all.sort_by_key(|a| a.at);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelId {
        ModelId::new("m0")
    }

    #[test]
    fn poisson_rate_is_approximately_respected() {
        let mut rng = SimRng::seed_from_u64(1);
        let process = ArrivalProcess::Poisson { rate_per_sec: 25.0 };
        let arrivals = process.generate(&model(), 0, SimDuration::from_secs(200), &mut rng);
        let rate = arrivals.len() as f64 / 200.0;
        assert!((rate - 25.0).abs() < 2.0, "observed rate {rate}");
        // Arrivals are time-ordered and inside the horizon.
        for window in arrivals.windows(2) {
            assert!(window[0].at <= window[1].at);
        }
        assert!(arrivals.last().unwrap().at < SimTime::from_secs(200));
    }

    #[test]
    fn mmpp_rate_falls_between_its_state_rates() {
        let mut rng = SimRng::seed_from_u64(2);
        let process = ArrivalProcess::paper_mmpp();
        let arrivals = process.generate(&model(), 0, SimDuration::from_secs(800), &mut rng);
        let rate = arrivals.len() as f64 / 800.0;
        assert!(
            (22.0..38.0).contains(&rate),
            "MMPP mean rate {rate} should sit between 20 and 40"
        );
    }

    #[test]
    fn mmpp_exhibits_rate_variation_over_time() {
        let mut rng = SimRng::seed_from_u64(3);
        let process = ArrivalProcess::paper_mmpp();
        let arrivals = process.generate(&model(), 0, SimDuration::from_secs(800), &mut rng);
        // Count arrivals in 50-second windows and check the spread is wide
        // enough to indicate modulation (not a flat Poisson).
        let mut windows = vec![0usize; 16];
        for arrival in &arrivals {
            let idx = (arrival.at.as_secs_f64() / 50.0) as usize;
            windows[idx.min(15)] += 1;
        }
        let min = *windows.iter().min().unwrap() as f64 / 50.0;
        let max = *windows.iter().max().unwrap() as f64 / 50.0;
        assert!(
            max - min > 8.0,
            "expected rate modulation, got {min}..{max}"
        );
    }

    #[test]
    fn constant_arrivals_are_evenly_spaced() {
        let mut rng = SimRng::seed_from_u64(4);
        let process = ArrivalProcess::Constant {
            interval: SimDuration::from_millis(100),
        };
        let arrivals = process.generate(&model(), 3, SimDuration::from_secs(1), &mut rng);
        assert_eq!(arrivals.len(), 9);
        assert_eq!(arrivals[0].at, SimTime::from_millis(100));
        assert_eq!(arrivals[8].at, SimTime::from_millis(900));
        assert!(arrivals.iter().all(|a| a.user_index == 3));
    }

    #[test]
    fn diurnal_mean_rate_tracks_the_base_and_modulates_with_the_phase() {
        let mut rng = SimRng::seed_from_u64(6);
        let process = ArrivalProcess::Diurnal {
            base_rate: 10.0,
            amplitude: 0.8,
            period: SimDuration::from_secs(200),
        };
        // Four full periods: the sinusoid averages out, so the mean rate is
        // close to the base rate.
        let arrivals = process.generate(&model(), 0, SimDuration::from_secs(800), &mut rng);
        let rate = arrivals.len() as f64 / 800.0;
        assert!((rate - 10.0).abs() < 1.0, "observed mean rate {rate}");
        for window in arrivals.windows(2) {
            assert!(window[0].at <= window[1].at);
        }
        // The first quarter-period (sin > 0, peak phase) carries clearly
        // more traffic than the third (sin < 0, trough phase).
        let count_in = |from: f64, to: f64| {
            arrivals
                .iter()
                .filter(|a| (from..to).contains(&a.at.as_secs_f64()))
                .count() as f64
        };
        let peak = count_in(0.0, 100.0);
        let trough = count_in(100.0, 200.0);
        assert!(
            peak > 1.5 * trough,
            "expected diurnal modulation, got peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn diurnal_generation_is_deterministic_per_seed() {
        let process = ArrivalProcess::Diurnal {
            base_rate: 5.0,
            amplitude: 0.5,
            period: SimDuration::from_secs(60),
        };
        let a = process.generate(
            &model(),
            0,
            SimDuration::from_secs(120),
            &mut SimRng::seed_from_u64(13),
        );
        let b = process.generate(
            &model(),
            0,
            SimDuration::from_secs(120),
            &mut SimRng::seed_from_u64(13),
        );
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "amplitude must lie in [0, 1]")]
    fn diurnal_rejects_overdriven_amplitudes() {
        let mut rng = SimRng::seed_from_u64(1);
        let _ = ArrivalProcess::Diurnal {
            base_rate: 5.0,
            amplitude: 1.5,
            period: SimDuration::from_secs(60),
        }
        .generate(&model(), 0, SimDuration::from_secs(10), &mut rng);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let process = ArrivalProcess::Poisson { rate_per_sec: 10.0 };
        let a = process.generate(
            &model(),
            0,
            SimDuration::from_secs(50),
            &mut SimRng::seed_from_u64(9),
        );
        let b = process.generate(
            &model(),
            0,
            SimDuration::from_secs(50),
            &mut SimRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn merge_orders_by_time() {
        let mut rng = SimRng::seed_from_u64(5);
        let m0 = ArrivalProcess::Poisson { rate_per_sec: 2.0 }.generate(
            &ModelId::new("m0"),
            0,
            SimDuration::from_secs(60),
            &mut rng,
        );
        let m1 = ArrivalProcess::Poisson { rate_per_sec: 2.0 }.generate(
            &ModelId::new("m1"),
            1,
            SimDuration::from_secs(60),
            &mut rng,
        );
        let merged = ArrivalProcess::merge(vec![m0.clone(), m1.clone()]);
        assert_eq!(merged.len(), m0.len() + m1.len());
        for window in merged.windows(2) {
            assert!(window[0].at <= window[1].at);
        }
    }
}
