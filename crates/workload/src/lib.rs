//! # sesemi-workload
//!
//! Workload generators for the SeSeMI experiments.  The paper evaluates with
//! three traffic shapes:
//!
//! * fixed-rate open-loop streams for the single-node throughput sweeps
//!   (Fig. 12);
//! * a **Markov-modulated Poisson process** (MMPP) alternating between mean
//!   rates of 20 and 40 requests/s for the multi-node experiments (Fig. 13);
//! * a multi-model mix of **Poisson streams** for popular models plus
//!   **interactive sessions** that query a set of models one after another
//!   (MLPerf-style, Tables III/IV).
//!
//! All generators are deterministic given a [`SimRng`](sesemi_sim::SimRng) seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod interactive;

pub use arrivals::{ArrivalProcess, RequestArrival, Tier};
pub use interactive::InteractiveSession;
