//! Interactive multi-model sessions (paper §VI-D).
//!
//! The FnPacker evaluation mixes background Poisson traffic on two popular
//! models with two interactive sessions in which "a set of models (m0 − m4)
//! are sequentially queried, representing the scenario that a model user
//! tries out multiple models for his sample data".  Sessions are closed-loop:
//! the next query is issued only after the previous one completed, so the
//! simulator drives them via [`InteractiveSession::next_model`].

use sesemi_inference::ModelId;
use sesemi_sim::SimTime;

/// A closed-loop session that queries a list of models one after another.
#[derive(Clone, Debug, PartialEq)]
pub struct InteractiveSession {
    /// Session name (used in result tables, e.g. "Session 1").
    pub name: String,
    /// When the session starts.
    pub start: SimTime,
    /// The models to query, in order.
    pub models: Vec<ModelId>,
    /// Index of the user driving the session.
    pub user_index: usize,
    next: usize,
}

impl InteractiveSession {
    /// Creates a session.
    ///
    /// # Panics
    /// Panics if `models` is empty.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        start: SimTime,
        models: Vec<ModelId>,
        user_index: usize,
    ) -> Self {
        assert!(!models.is_empty(), "a session needs at least one model");
        InteractiveSession {
            name: name.into(),
            start,
            models,
            user_index,
            next: 0,
        }
    }

    /// The two sessions of the paper's Table IV: at ~4 min and ~6 min into
    /// the workload, each querying `m0`–`m4` sequentially.
    #[must_use]
    pub fn paper_sessions(models: &[ModelId]) -> Vec<InteractiveSession> {
        vec![
            InteractiveSession::new("Session 1", SimTime::from_secs(240), models.to_vec(), 10),
            InteractiveSession::new("Session 2", SimTime::from_secs(360), models.to_vec(), 11),
        ]
    }

    /// The next model to query, or `None` when the session is finished.
    #[must_use]
    pub fn next_model(&self) -> Option<&ModelId> {
        self.models.get(self.next)
    }

    /// Marks the current query as completed, advancing to the next model.
    pub fn advance(&mut self) {
        if self.next < self.models.len() {
            self.next += 1;
        }
    }

    /// Whether all models in the session have been queried.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.next >= self.models.len()
    }

    /// How many queries have completed so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> Vec<ModelId> {
        (0..5).map(|i| ModelId::new(format!("m{i}"))).collect()
    }

    #[test]
    fn session_walks_models_in_order() {
        let mut session = InteractiveSession::new("s", SimTime::from_secs(240), models(), 7);
        let mut visited = Vec::new();
        while let Some(model) = session.next_model().cloned() {
            visited.push(model.as_str().to_string());
            session.advance();
        }
        assert_eq!(visited, vec!["m0", "m1", "m2", "m3", "m4"]);
        assert!(session.is_finished());
        assert_eq!(session.completed(), 5);
        // Advancing past the end is a no-op.
        session.advance();
        assert_eq!(session.completed(), 5);
    }

    #[test]
    fn paper_sessions_match_section_6d() {
        let sessions = InteractiveSession::paper_sessions(&models());
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].start, SimTime::from_secs(240));
        assert_eq!(sessions[1].start, SimTime::from_secs(360));
        assert_eq!(sessions[0].models.len(), 5);
        assert_ne!(sessions[0].user_index, sessions[1].user_index);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_session_rejected() {
        let _ = InteractiveSession::new("s", SimTime::ZERO, vec![], 0);
    }
}
