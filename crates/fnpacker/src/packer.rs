//! The FnPacker scheduler (paper §IV-C).

use crate::pool::FnPool;
use crate::stats::{EndpointSnapshot, ModelExecutionStats};
use sesemi_inference::ModelId;
use sesemi_platform::ActionName;
use sesemi_sim::{SimDuration, SimTime};
use std::collections::HashMap;

#[derive(Clone, Debug, Default)]
struct EndpointState {
    pending: usize,
    exclusive_for: Option<ModelId>,
    last_model: Option<ModelId>,
    last_dispatch: Option<SimTime>,
    total_dispatched: u64,
}

impl EndpointState {
    fn exclusivity_lapsed(&self, now: SimTime, interval: SimDuration) -> bool {
        match self.last_dispatch {
            Some(last) => now.duration_since(last) >= interval,
            None => true,
        }
    }
}

/// The FnPacker request router for one [`FnPool`].
#[derive(Debug)]
pub struct FnPacker {
    pool: FnPool,
    endpoints: Vec<EndpointState>,
    models: HashMap<ModelId, ModelExecutionStats>,
    /// How long an exclusive endpoint must stay idle before it can be handed
    /// to another model ("a large interval has passed since the last request
    /// was sent to it").
    exclusive_release_interval: SimDuration,
}

impl FnPacker {
    /// Default exclusivity-release interval: twice the keep-alive window of a
    /// typical hot model's inter-arrival gap; 30 s works well for the paper's
    /// workloads and is what the T3/T4 experiments use.
    pub const DEFAULT_RELEASE_INTERVAL: SimDuration = SimDuration::from_secs(30);

    /// Creates a router for `pool`.
    #[must_use]
    pub fn new(pool: FnPool) -> Self {
        Self::with_release_interval(pool, Self::DEFAULT_RELEASE_INTERVAL)
    }

    /// Creates a router with an explicit exclusivity-release interval (used
    /// by the ablation bench).
    #[must_use]
    pub fn with_release_interval(pool: FnPool, interval: SimDuration) -> Self {
        let endpoints = vec![EndpointState::default(); pool.endpoint_count];
        let models = pool
            .models
            .iter()
            .map(|m| (m.clone(), ModelExecutionStats::default()))
            .collect();
        FnPacker {
            pool,
            endpoints,
            models,
            exclusive_release_interval: interval,
        }
    }

    /// The pool this router manages.
    #[must_use]
    pub fn pool(&self) -> &FnPool {
        &self.pool
    }

    /// Routes one request for `model` at time `now`, returning the endpoint
    /// index (and implicitly its [`ActionName`] via
    /// [`FnPool::endpoint_action`]).
    ///
    /// # Panics
    /// Panics if `model` is not part of the pool (a configuration error the
    /// caller should have prevented).
    pub fn route(&mut self, model: &ModelId, now: SimTime) -> usize {
        assert!(
            self.pool.serves(model),
            "model {model} is not part of pool {}",
            self.pool.name
        );
        let stats = self.models.get(model).expect("model registered");

        // Rule 1: a model with pending responses sticks to its endpoint and
        // that endpoint becomes exclusive to it.
        let chosen = if stats.pending > 0 {
            let endpoint = stats
                .current_endpoint
                .expect("pending requests imply an endpoint");
            self.endpoints[endpoint].exclusive_for = Some(model.clone());
            endpoint
        } else {
            self.pick_idle_endpoint(model, now)
        };

        // Bookkeeping.
        let endpoint_state = &mut self.endpoints[chosen];
        endpoint_state.pending += 1;
        endpoint_state.last_model = Some(model.clone());
        endpoint_state.last_dispatch = Some(now);
        endpoint_state.total_dispatched += 1;
        self.models
            .get_mut(model)
            .expect("model registered")
            .on_dispatch(chosen, now);
        chosen
    }

    fn pick_idle_endpoint(&mut self, model: &ModelId, now: SimTime) -> usize {
        // Rule 2: first endpoint that is not busy serving another model.
        for (index, endpoint) in self.endpoints.iter_mut().enumerate() {
            let free_of_exclusivity = match &endpoint.exclusive_for {
                None => true,
                Some(owner) if owner == model => true,
                Some(_) => {
                    if endpoint.exclusivity_lapsed(now, self.exclusive_release_interval) {
                        endpoint.exclusive_for = None;
                        true
                    } else {
                        false
                    }
                }
            };
            if endpoint.pending == 0 && free_of_exclusivity {
                return index;
            }
        }
        // Fallback: everything is busy; pick the endpoint with the fewest
        // pending responses (ties broken by index for determinism).
        self.endpoints
            .iter()
            .enumerate()
            .min_by_key(|(index, e)| (e.pending, *index))
            .map(|(index, _)| index)
            .expect("pool has at least one endpoint")
    }

    /// Records the completion of a request for `model` on `endpoint`.
    pub fn complete(
        &mut self,
        model: &ModelId,
        endpoint: usize,
        now: SimTime,
        latency: SimDuration,
        path: &str,
    ) {
        let _ = now;
        if let Some(state) = self.endpoints.get_mut(endpoint) {
            state.pending = state.pending.saturating_sub(1);
        }
        if let Some(stats) = self.models.get_mut(model) {
            stats.on_complete(latency, path);
        }
    }

    /// Unwinds a routed request that will never run (rejected or shed by an
    /// admission policy): releases the endpoint's and the model's pending
    /// slot without recording a completion, so the packer's load view does
    /// not drift from reality over a long shedding run.
    pub fn cancel(&mut self, model: &ModelId, endpoint: usize) {
        if let Some(state) = self.endpoints.get_mut(endpoint) {
            state.pending = state.pending.saturating_sub(1);
        }
        if let Some(stats) = self.models.get_mut(model) {
            stats.on_cancel();
        }
    }

    /// The action name of endpoint `index`.
    #[must_use]
    pub fn endpoint_action(&self, index: usize) -> ActionName {
        self.pool.endpoint_action(index)
    }

    /// Current statistics for `model`, if it belongs to the pool.
    #[must_use]
    pub fn model_stats(&self, model: &ModelId) -> Option<&ModelExecutionStats> {
        self.models.get(model)
    }

    /// Point-in-time view of every endpoint.
    #[must_use]
    pub fn endpoint_snapshots(&self) -> Vec<EndpointSnapshot> {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(index, e)| EndpointSnapshot {
                index,
                pending: e.pending,
                exclusive_for: e.exclusive_for.clone(),
                last_model: e.last_model.clone(),
                last_dispatch: e.last_dispatch,
                total_dispatched: e.total_dispatched,
            })
            .collect()
    }

    /// Number of distinct endpoints that have served at least one request —
    /// a proxy for how well the packer consolidates infrequent models.
    #[must_use]
    pub fn endpoints_used(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|e| e.total_dispatched > 0)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(models: &[&str], endpoints: usize) -> FnPool {
        FnPool::new(
            "pool",
            models.iter().map(|m| ModelId::new(*m)).collect(),
            768 * 1024 * 1024,
            endpoints,
        )
    }

    #[test]
    fn hot_models_get_exclusive_endpoints() {
        // m0 and m1 receive continuous traffic; they should end up on two
        // different, exclusive endpoints (Table III's "no interference").
        let mut packer = FnPacker::new(pool(&["m0", "m1", "m2"], 3));
        let e0 = packer.route(&ModelId::new("m0"), SimTime::from_secs(1));
        // m0's first request is still pending when the second arrives.
        let e0_again = packer.route(&ModelId::new("m0"), SimTime::from_secs(2));
        assert_eq!(e0, e0_again);
        let e1 = packer.route(&ModelId::new("m1"), SimTime::from_secs(2));
        assert_ne!(e0, e1);

        let snapshots = packer.endpoint_snapshots();
        assert_eq!(snapshots[e0].exclusive_for, Some(ModelId::new("m0")));
        assert_eq!(snapshots[e0].pending, 2);
        assert_eq!(snapshots[e1].pending, 1);
    }

    #[test]
    fn infrequent_models_share_an_idle_endpoint() {
        let mut packer = FnPacker::new(pool(&["m2", "m3", "m4"], 2));
        // m2 is served and completes.
        let e2 = packer.route(&ModelId::new("m2"), SimTime::from_secs(10));
        packer.complete(
            &ModelId::new("m2"),
            e2,
            SimTime::from_secs(12),
            SimDuration::from_secs(2),
            "cold",
        );
        // m3 arrives next; the endpoint is idle and not exclusive, so m3
        // reuses it (warm invocation instead of a new cold start).
        let e3 = packer.route(&ModelId::new("m3"), SimTime::from_secs(13));
        assert_eq!(e2, e3);
        assert_eq!(packer.endpoints_used(), 1);
    }

    #[test]
    fn exclusive_endpoints_are_skipped_until_the_interval_lapses() {
        let mut packer =
            FnPacker::with_release_interval(pool(&["hot", "rare"], 2), SimDuration::from_secs(30));
        // Make endpoint 0 exclusive to "hot" by overlapping requests.
        let e_hot = packer.route(&ModelId::new("hot"), SimTime::from_secs(1));
        packer.route(&ModelId::new("hot"), SimTime::from_secs(2));
        assert_eq!(e_hot, 0);
        packer.complete(
            &ModelId::new("hot"),
            0,
            SimTime::from_secs(3),
            SimDuration::from_millis(500),
            "hot",
        );
        packer.complete(
            &ModelId::new("hot"),
            0,
            SimTime::from_secs(3),
            SimDuration::from_millis(500),
            "hot",
        );

        // "rare" arrives shortly after: endpoint 0 is idle but still
        // exclusive, so rare goes to endpoint 1.
        let e_rare = packer.route(&ModelId::new("rare"), SimTime::from_secs(5));
        assert_eq!(e_rare, 1);
        packer.complete(
            &ModelId::new("rare"),
            1,
            SimTime::from_secs(6),
            SimDuration::from_secs(1),
            "cold",
        );

        // Much later, endpoint 0's exclusivity has lapsed (no request for more
        // than the release interval), so it counts as "not busy" again and,
        // being the first such endpoint, receives the next rare request.
        packer.route(&ModelId::new("hot"), SimTime::from_secs(40));
        packer.complete(
            &ModelId::new("hot"),
            0,
            SimTime::from_secs(41),
            SimDuration::from_millis(500),
            "hot",
        );
        let much_later = SimTime::from_secs(120);
        let e = packer.route(&ModelId::new("rare"), much_later);
        assert_eq!(e, 0, "lapsed exclusivity frees the endpoint");
        // While that rare request is pending, further rare requests stick to
        // the same endpoint (rule 1).
        let e = packer.route(&ModelId::new("rare"), much_later);
        assert_eq!(e, 0, "pending rare requests stick to their endpoint");
        assert_eq!(
            packer.endpoint_snapshots()[0].exclusive_for,
            Some(ModelId::new("rare"))
        );
    }

    #[test]
    fn fallback_picks_least_loaded_endpoint_when_all_are_busy() {
        let mut packer = FnPacker::new(pool(&["a", "b", "c"], 2));
        // Saturate both endpoints.
        let ea = packer.route(&ModelId::new("a"), SimTime::from_secs(1));
        let eb = packer.route(&ModelId::new("b"), SimTime::from_secs(1));
        assert_ne!(ea, eb);
        packer.route(&ModelId::new("a"), SimTime::from_secs(2)); // a now has 2 pending
                                                                 // c has nowhere idle; it must go to the endpoint with fewer pending
                                                                 // requests, which is b's.
        let ec = packer.route(&ModelId::new("c"), SimTime::from_secs(3));
        assert_eq!(ec, eb);
    }

    #[test]
    fn stats_are_tracked_per_model() {
        let mut packer = FnPacker::new(pool(&["m0"], 1));
        let e = packer.route(&ModelId::new("m0"), SimTime::from_secs(1));
        packer.complete(
            &ModelId::new("m0"),
            e,
            SimTime::from_secs(2),
            SimDuration::from_millis(1500),
            "cold",
        );
        let stats = packer.model_stats(&ModelId::new("m0")).unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.cold_latency, Some(SimDuration::from_millis(1500)));
        assert!(packer.model_stats(&ModelId::new("zzz")).is_none());
        assert_eq!(packer.endpoint_action(e).as_str(), "pool-ep0");
    }

    #[test]
    #[should_panic(expected = "not part of pool")]
    fn routing_an_unknown_model_panics() {
        let mut packer = FnPacker::new(pool(&["m0"], 1));
        packer.route(&ModelId::new("unknown"), SimTime::ZERO);
    }
}

#[cfg(test)]
mod properties {
    //! Property tests over arbitrary route/complete sequences: the §IV-C
    //! scheduling rules as machine-checked invariants.

    use super::*;
    use proptest::prelude::*;
    use sesemi_sim::SimDuration;
    use std::collections::VecDeque;

    const RELEASE: SimDuration = SimDuration::from_secs(30);

    /// Drives a packer through a deterministic interpretation of `ops` and
    /// calls `check` before/after bookkeeping at every routing step.
    fn drive(
        models: usize,
        endpoints: usize,
        ops: &[u64],
        mut check: impl FnMut(&FnPacker, &ModelId, usize, SimTime),
    ) {
        let names: Vec<ModelId> = (0..models).map(|i| ModelId::new(format!("m{i}"))).collect();
        let pool = FnPool::new("prop", names.clone(), 768 * 1024 * 1024, endpoints);
        let mut packer = FnPacker::with_release_interval(pool, RELEASE);
        let mut in_flight: VecDeque<(ModelId, usize)> = VecDeque::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            // Advance the clock by 0..=16 seconds so exclusivity sometimes
            // lapses (release interval 30 s) and sometimes does not.
            now += SimDuration::from_secs(op % 17);
            if op % 4 == 3 {
                // Complete the oldest pending request, if any.
                if let Some((model, endpoint)) = in_flight.pop_front() {
                    packer.complete(&model, endpoint, now, SimDuration::from_millis(500), "hot");
                }
            } else {
                let model = &names[(op / 4) as usize % names.len()];
                let endpoint = packer.route(model, now);
                check(&packer, model, endpoint, now);
                in_flight.push_back((model.clone(), endpoint));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pending_models_always_stick_to_their_endpoint(
            ops in proptest::collection::vec(0u64..1_000, 1..200),
        ) {
            // Rule 1: a request for a model with responses pending elsewhere
            // goes to that same endpoint — a shared endpoint never serves a
            // model that has a pending response on a different endpoint.
            let mut violations = Vec::new();
            drive(3, 2, &ops, |packer, model, endpoint, _| {
                let stats = packer.model_stats(model).expect("model registered");
                // `check` runs after bookkeeping, so a model that had pending
                // requests *before* this route now has pending >= 2.
                if stats.pending >= 2 && stats.current_endpoint != Some(endpoint) {
                    violations.push((model.clone(), endpoint));
                }
            });
            prop_assert!(violations.is_empty(), "stickiness violated: {violations:?}");
        }

        #[test]
        fn exclusive_endpoints_never_switch_models_while_alternatives_exist(
            ops in proptest::collection::vec(0u64..1_000, 1..200),
        ) {
            // An endpoint that is exclusive to a model (and whose exclusivity
            // has not lapsed) is never handed another model's request as long
            // as any idle endpoint is available; only the all-busy fallback
            // may override exclusivity.
            let mut violations = Vec::new();
            let mut before: Vec<EndpointSnapshot> = Vec::new();
            drive(4, 3, &ops, |packer, model, endpoint, now| {
                // Rule-1 routes (the model already had responses pending) are
                // stickiness, not an idle-endpoint choice; rule 1 may keep a
                // model on an endpoint the all-busy fallback once gave it.
                if packer.model_stats(model).expect("registered").pending >= 2 {
                    before = packer.endpoint_snapshots();
                    return;
                }
                // Reconstruct the pre-route state: this route incremented the
                // chosen endpoint's pending count by one.
                let mut snapshots = packer.endpoint_snapshots();
                snapshots[endpoint].pending -= 1;
                let idle_available = snapshots.iter().any(|snapshot| {
                    snapshot.pending == 0
                        && match (&snapshot.exclusive_for, &snapshot.last_dispatch) {
                            (None, _) => true,
                            (Some(owner), _) if owner == model => true,
                            (Some(_), Some(last)) => {
                                now.duration_since(*last) >= RELEASE
                            }
                            (Some(_), None) => true,
                        }
                });
                if idle_available {
                    // The endpoint that was chosen must not have been busy
                    // serving (exclusive to) a different, unlapsed model.
                    if let Some(previous) = before.get(endpoint) {
                        let unlapsed = previous
                            .last_dispatch
                            .is_some_and(|last| now.duration_since(last) < RELEASE);
                        if previous
                            .exclusive_for
                            .as_ref()
                            .is_some_and(|owner| owner != model)
                            && unlapsed
                        {
                            violations.push((model.clone(), endpoint));
                        }
                    }
                }
                before = packer.endpoint_snapshots();
            });
            prop_assert!(violations.is_empty(), "exclusivity violated: {violations:?}");
        }

        #[test]
        fn endpoint_usage_and_pending_counts_stay_consistent(
            ops in proptest::collection::vec(0u64..1_000, 1..200),
        ) {
            let mut routes = 0usize;
            let mut last_used = 0usize;
            let mut ok = true;
            drive(5, 3, &ops, |packer, _, _, _| {
                routes += 1;
                let used = packer.endpoints_used();
                // Monotone, bounded by the pool size and by the routes made.
                ok &= used >= last_used && used <= 3 && used <= routes;
                last_used = used;
                // Endpoint pending counts add up to the live request count.
                let pending: usize = packer
                    .endpoint_snapshots()
                    .iter()
                    .map(|snapshot| snapshot.pending)
                    .sum();
                let per_model: usize = (0..5)
                    .filter_map(|i| packer.model_stats(&ModelId::new(format!("m{i}"))))
                    .map(|stats| stats.pending)
                    .sum();
                ok &= pending == per_model;
            });
            prop_assert!(ok, "usage or pending bookkeeping diverged");
        }
    }
}
