//! The execution statistics FnPacker monitors per model and per endpoint.

use sesemi_inference::ModelId;
use sesemi_sim::{SimDuration, SimTime};

/// Per-model execution statistics (paper §IV-C: "the number of concurrent
/// requests pending response on each model, the last invocation time, and the
/// latency of different types of execution").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModelExecutionStats {
    /// Requests sent but not yet completed.
    pub pending: usize,
    /// Time of the most recent request for this model.
    pub last_invocation: Option<SimTime>,
    /// The endpoint currently serving this model, if any.
    pub current_endpoint: Option<usize>,
    /// Observed cold-invocation latencies.
    pub cold_latency: Option<SimDuration>,
    /// Observed warm-invocation latencies.
    pub warm_latency: Option<SimDuration>,
    /// Observed hot-invocation latencies.
    pub hot_latency: Option<SimDuration>,
    /// Total completed requests.
    pub completed: u64,
}

impl ModelExecutionStats {
    /// Records a dispatched request.
    pub fn on_dispatch(&mut self, endpoint: usize, now: SimTime) {
        self.pending += 1;
        self.last_invocation = Some(now);
        self.current_endpoint = Some(endpoint);
    }

    /// Unwinds a dispatched request that will never complete (rejected or
    /// shed at admission): the pending count drops without recording a
    /// completion or a latency sample.
    pub fn on_cancel(&mut self) {
        self.pending = self.pending.saturating_sub(1);
    }

    /// Records a completed request with its observed latency and path label
    /// (`"cold"`, `"warm"` or `"hot"`).
    pub fn on_complete(&mut self, latency: SimDuration, path: &str) {
        self.pending = self.pending.saturating_sub(1);
        self.completed += 1;
        match path {
            "cold" => self.cold_latency = Some(latency),
            "warm" => self.warm_latency = Some(latency),
            _ => self.hot_latency = Some(latency),
        }
    }
}

/// A point-in-time view of one endpoint, used by the scheduling policy and by
/// the experiment harness.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointSnapshot {
    /// Endpoint index within the pool.
    pub index: usize,
    /// Requests dispatched to this endpoint that have not completed.
    pub pending: usize,
    /// The model this endpoint is exclusively serving, if any.
    pub exclusive_for: Option<ModelId>,
    /// The model most recently dispatched to this endpoint.
    pub last_model: Option<ModelId>,
    /// When the endpoint last received a request.
    pub last_dispatch: Option<SimTime>,
    /// Total requests dispatched to this endpoint.
    pub total_dispatched: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_and_complete_update_counters() {
        let mut stats = ModelExecutionStats::default();
        stats.on_dispatch(2, SimTime::from_secs(5));
        stats.on_dispatch(2, SimTime::from_secs(6));
        assert_eq!(stats.pending, 2);
        assert_eq!(stats.current_endpoint, Some(2));
        assert_eq!(stats.last_invocation, Some(SimTime::from_secs(6)));

        stats.on_complete(SimDuration::from_millis(100), "hot");
        stats.on_complete(SimDuration::from_millis(900), "cold");
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.hot_latency, Some(SimDuration::from_millis(100)));
        assert_eq!(stats.cold_latency, Some(SimDuration::from_millis(900)));
        assert_eq!(stats.warm_latency, None);

        // Completing more than dispatched saturates instead of underflowing.
        stats.on_complete(SimDuration::from_millis(50), "warm");
        assert_eq!(stats.pending, 0);
        assert_eq!(stats.warm_latency, Some(SimDuration::from_millis(50)));
    }
}
