//! # sesemi-fnpacker
//!
//! FnPacker is SeSeMI's model-management component (paper §IV-C).  A model
//! owner typically serves several similar models whose individual request
//! rates are low and unpredictable; deploying each model on its own endpoint
//! wastes cold starts, while deploying all models behind a single endpoint
//! causes constant model switching inside the sandboxes (Fig. 7).
//!
//! FnPacker sits in front of the serverless platform proxy.  The owner
//! declares an [`FnPool`] (a set of models plus the per-instance memory
//! budget); FnPacker deploys a small set of endpoints for the pool and routes
//! each request based on two signals it monitors per endpoint and per model:
//! the number of pending responses and the time of the last invocation.
//!
//! The scheduling policy (§IV-C):
//! * a request for a model that still has pending responses goes to that
//!   model's current endpoint, which is marked *exclusive* to the model;
//! * otherwise the request goes to the first endpoint that is not busy
//!   serving another model — an endpoint is "not busy" when it has no
//!   pending responses and is not exclusive to a different model, or when its
//!   exclusivity has lapsed because a large interval passed since its last
//!   request;
//! * models with high request rates therefore keep exclusive endpoints and
//!   never pay model-switching costs, while rarely used models share
//!   endpoints and avoid cold starts.
//!
//! The [`baselines`] module provides the two deployments the paper compares
//! against in Tables III/IV: *One-to-one* (one endpoint per model) and
//! *All-in-one* (a single endpoint for every model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod packer;
pub mod pool;
pub mod stats;

pub use baselines::{AllInOneRouter, OneToOneRouter, Router, RoutingStrategy};
pub use packer::FnPacker;
pub use pool::FnPool;
pub use stats::{EndpointSnapshot, ModelExecutionStats};
