//! FnPool: the owner-declared group of models managed by FnPacker.

use sesemi_inference::ModelId;
use sesemi_platform::ActionName;

/// An owner-declared pool: the models to serve and the per-instance memory
/// budget (paper §IV-C: "the model owner specifies a Fnpool structure that
/// contains a set of models and the memory budget for an instance").
#[derive(Clone, Debug, PartialEq)]
pub struct FnPool {
    /// Pool name, used as the prefix of the generated endpoint names.
    pub name: String,
    /// Models served by this pool.
    pub models: Vec<ModelId>,
    /// Memory budget per endpoint instance in bytes.
    pub memory_budget_bytes: u64,
    /// Number of shared endpoints FnPacker deploys for the pool.
    pub endpoint_count: usize,
}

impl FnPool {
    /// Creates a pool.
    ///
    /// # Panics
    /// Panics if the pool has no models or no endpoints.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        models: Vec<ModelId>,
        memory_budget_bytes: u64,
        endpoint_count: usize,
    ) -> Self {
        assert!(!models.is_empty(), "an FnPool needs at least one model");
        assert!(endpoint_count > 0, "an FnPool needs at least one endpoint");
        FnPool {
            name: name.into(),
            models,
            memory_budget_bytes,
            endpoint_count,
        }
    }

    /// The action name of endpoint `index`.
    #[must_use]
    pub fn endpoint_action(&self, index: usize) -> ActionName {
        ActionName::new(format!("{}-ep{}", self.name, index))
    }

    /// All endpoint action names.
    #[must_use]
    pub fn endpoint_actions(&self) -> Vec<ActionName> {
        (0..self.endpoint_count)
            .map(|i| self.endpoint_action(i))
            .collect()
    }

    /// Whether the pool serves `model`.
    #[must_use]
    pub fn serves(&self, model: &ModelId) -> bool {
        self.models.contains(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_generates_endpoint_actions() {
        let pool = FnPool::new(
            "clinic",
            vec![ModelId::new("m0"), ModelId::new("m1")],
            768 * 1024 * 1024,
            3,
        );
        assert_eq!(pool.endpoint_actions().len(), 3);
        assert_eq!(pool.endpoint_action(1).as_str(), "clinic-ep1");
        assert!(pool.serves(&ModelId::new("m0")));
        assert!(!pool.serves(&ModelId::new("m9")));
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_pool_rejected() {
        let _ = FnPool::new("p", vec![], 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one endpoint")]
    fn zero_endpoints_rejected() {
        let _ = FnPool::new("p", vec![ModelId::new("m")], 1, 0);
    }
}
