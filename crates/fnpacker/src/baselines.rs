//! The multi-model deployment baselines of §IV-C and §VI-D, and a common
//! [`Router`] interface so the experiment harness can swap strategies.
//!
//! * **One-to-one** — every model gets its own endpoint.  Good for hot
//!   models, wasteful for infrequent ones (each pays its own cold starts).
//! * **All-in-one** — a single endpoint serves all models; sandboxes swap
//!   models back and forth when requests interleave (Fig. 7), inflating
//!   latency by the model-switch cost.
//! * **FnPacker** — the adaptive policy of [`crate::FnPacker`].

use crate::packer::FnPacker;
use crate::pool::FnPool;
use sesemi_inference::ModelId;
use sesemi_platform::ActionName;
use sesemi_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// A routing strategy for multi-model serving.
pub trait Router {
    /// Routes a request for `model` at `now` and returns the endpoint action
    /// to invoke.
    fn route(&mut self, model: &ModelId, now: SimTime) -> ActionName;

    /// Records a completed request (used by adaptive strategies).
    fn complete(
        &mut self,
        model: &ModelId,
        endpoint: &ActionName,
        now: SimTime,
        latency: SimDuration,
        path: &str,
    );

    /// Unwinds a routed request that was refused by an admission policy and
    /// will never complete.  Stateless strategies ignore it; adaptive ones
    /// release the pending slot [`Router::route`] took without recording a
    /// completion or latency sample.
    fn cancel(&mut self, model: &ModelId, endpoint: &ActionName) {
        let _ = (model, endpoint);
    }

    /// Human-readable strategy name for experiment output.
    fn name(&self) -> &'static str;

    /// The endpoint actions this strategy needs deployed.
    fn endpoints(&self) -> Vec<ActionName>;

    /// Number of requests for `model` that are dispatched but not yet
    /// completed, if the strategy tracks it.  The cluster simulator copies
    /// this into the `PlacementContext` handed to placement policies, so a
    /// custom scheduler *can* let router state inform placement; none of the
    /// built-in policies use it (only FnPacker maintains per-model
    /// statistics).
    fn pending_for(&self, model: &ModelId) -> Option<usize> {
        let _ = model;
        None
    }
}

/// Which multi-model strategy to use (Tables III and IV compare all three).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoutingStrategy {
    /// One endpoint per model.
    OneToOne,
    /// A single endpoint for every model.
    AllInOne,
    /// The FnPacker policy.
    FnPacker,
}

impl RoutingStrategy {
    /// All strategies, in the order the paper's tables list them.
    pub const ALL: [RoutingStrategy; 3] = [
        RoutingStrategy::AllInOne,
        RoutingStrategy::OneToOne,
        RoutingStrategy::FnPacker,
    ];

    /// Label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RoutingStrategy::OneToOne => "One-to-one",
            RoutingStrategy::AllInOne => "All-in-one",
            RoutingStrategy::FnPacker => "FnPacker",
        }
    }

    /// Builds a router of this strategy for the given pool.
    #[must_use]
    pub fn build(self, pool: &FnPool) -> Box<dyn Router> {
        match self {
            RoutingStrategy::OneToOne => Box::new(OneToOneRouter::new(pool)),
            RoutingStrategy::AllInOne => Box::new(AllInOneRouter::new(pool)),
            RoutingStrategy::FnPacker => Box::new(FnPackerRouter::new(pool.clone())),
        }
    }
}

/// One endpoint per model.
#[derive(Debug)]
pub struct OneToOneRouter {
    endpoints: HashMap<ModelId, ActionName>,
}

impl OneToOneRouter {
    /// Creates the router for a pool.
    #[must_use]
    pub fn new(pool: &FnPool) -> Self {
        let endpoints = pool
            .models
            .iter()
            .map(|m| (m.clone(), ActionName::new(format!("{}-{}", pool.name, m))))
            .collect();
        OneToOneRouter { endpoints }
    }
}

impl Router for OneToOneRouter {
    fn route(&mut self, model: &ModelId, _now: SimTime) -> ActionName {
        self.endpoints
            .get(model)
            .cloned()
            .unwrap_or_else(|| panic!("model {model} not deployed"))
    }

    fn complete(
        &mut self,
        _model: &ModelId,
        _endpoint: &ActionName,
        _now: SimTime,
        _latency: SimDuration,
        _path: &str,
    ) {
    }

    fn name(&self) -> &'static str {
        "One-to-one"
    }

    fn endpoints(&self) -> Vec<ActionName> {
        let mut endpoints: Vec<ActionName> = self.endpoints.values().cloned().collect();
        endpoints.sort();
        endpoints
    }
}

/// A single endpoint for all models.
#[derive(Debug)]
pub struct AllInOneRouter {
    endpoint: ActionName,
}

impl AllInOneRouter {
    /// Creates the router for a pool.
    #[must_use]
    pub fn new(pool: &FnPool) -> Self {
        AllInOneRouter {
            endpoint: ActionName::new(format!("{}-all", pool.name)),
        }
    }
}

impl Router for AllInOneRouter {
    fn route(&mut self, _model: &ModelId, _now: SimTime) -> ActionName {
        self.endpoint.clone()
    }

    fn complete(
        &mut self,
        _model: &ModelId,
        _endpoint: &ActionName,
        _now: SimTime,
        _latency: SimDuration,
        _path: &str,
    ) {
    }

    fn name(&self) -> &'static str {
        "All-in-one"
    }

    fn endpoints(&self) -> Vec<ActionName> {
        vec![self.endpoint.clone()]
    }
}

/// Adapter exposing [`FnPacker`] through the [`Router`] interface.
#[derive(Debug)]
pub struct FnPackerRouter {
    packer: FnPacker,
    action_to_index: HashMap<ActionName, usize>,
}

impl FnPackerRouter {
    /// Creates the adapter.
    #[must_use]
    pub fn new(pool: FnPool) -> Self {
        let action_to_index = pool
            .endpoint_actions()
            .into_iter()
            .enumerate()
            .map(|(i, a)| (a, i))
            .collect();
        FnPackerRouter {
            packer: FnPacker::new(pool),
            action_to_index,
        }
    }

    /// Access to the underlying packer (for statistics).
    #[must_use]
    pub fn packer(&self) -> &FnPacker {
        &self.packer
    }
}

impl Router for FnPackerRouter {
    fn route(&mut self, model: &ModelId, now: SimTime) -> ActionName {
        let index = self.packer.route(model, now);
        self.packer.endpoint_action(index)
    }

    fn complete(
        &mut self,
        model: &ModelId,
        endpoint: &ActionName,
        now: SimTime,
        latency: SimDuration,
        path: &str,
    ) {
        if let Some(index) = self.action_to_index.get(endpoint) {
            self.packer.complete(model, *index, now, latency, path);
        }
    }

    fn cancel(&mut self, model: &ModelId, endpoint: &ActionName) {
        if let Some(index) = self.action_to_index.get(endpoint) {
            self.packer.cancel(model, *index);
        }
    }

    fn name(&self) -> &'static str {
        "FnPacker"
    }

    fn endpoints(&self) -> Vec<ActionName> {
        self.packer.pool().endpoint_actions()
    }

    fn pending_for(&self, model: &ModelId) -> Option<usize> {
        self.packer.model_stats(model).map(|stats| stats.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FnPool {
        FnPool::new(
            "p",
            vec![ModelId::new("m0"), ModelId::new("m1"), ModelId::new("m2")],
            768 * 1024 * 1024,
            2,
        )
    }

    #[test]
    fn one_to_one_gives_each_model_its_own_endpoint() {
        let mut router = OneToOneRouter::new(&pool());
        let e0 = router.route(&ModelId::new("m0"), SimTime::ZERO);
        let e1 = router.route(&ModelId::new("m1"), SimTime::ZERO);
        assert_ne!(e0, e1);
        assert_eq!(router.endpoints().len(), 3);
        assert_eq!(router.name(), "One-to-one");
        // Routing is stable.
        assert_eq!(router.route(&ModelId::new("m0"), SimTime::from_secs(9)), e0);
    }

    #[test]
    fn all_in_one_uses_a_single_endpoint() {
        let mut router = AllInOneRouter::new(&pool());
        let e0 = router.route(&ModelId::new("m0"), SimTime::ZERO);
        let e1 = router.route(&ModelId::new("m2"), SimTime::ZERO);
        assert_eq!(e0, e1);
        assert_eq!(router.endpoints().len(), 1);
        assert_eq!(router.name(), "All-in-one");
    }

    #[test]
    fn strategy_builder_produces_the_right_router() {
        let pool = pool();
        for strategy in RoutingStrategy::ALL {
            let router = strategy.build(&pool);
            assert_eq!(router.name(), strategy.label());
        }
        assert_eq!(
            RoutingStrategy::FnPacker.build(&pool).endpoints().len(),
            pool.endpoint_count
        );
    }

    #[test]
    fn fnpacker_router_tracks_completions_through_the_adapter() {
        let mut router = FnPackerRouter::new(pool());
        let endpoint = router.route(&ModelId::new("m0"), SimTime::from_secs(1));
        assert_eq!(router.pending_for(&ModelId::new("m0")), Some(1));
        assert_eq!(router.pending_for(&ModelId::new("zzz")), None);
        router.complete(
            &ModelId::new("m0"),
            &endpoint,
            SimTime::from_secs(2),
            SimDuration::from_millis(400),
            "hot",
        );
        let stats = router.packer().model_stats(&ModelId::new("m0")).unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.pending, 0);
        assert_eq!(router.pending_for(&ModelId::new("m0")), Some(0));
        // The non-adaptive baselines track nothing.
        assert_eq!(
            OneToOneRouter::new(&pool()).pending_for(&ModelId::new("m0")),
            None
        );
    }
}
