//! # criterion (in-tree compatibility shim)
//!
//! A minimal wall-clock benchmark harness exposing the subset of the
//! [`criterion` 0.5 API](https://docs.rs/criterion/0.5) that the SeSeMI
//! benches use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size`, `warm_up_time`, `measurement_time`),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It performs a warm-up phase followed by `sample_size` timed samples and
//! prints mean / min / max per benchmark.  It does not do outlier analysis,
//! HTML reports or statistical regression — it exists so `cargo bench`
//! builds and runs in an environment without crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, normally constructed by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 100,
            default_warm_up: Duration::from_secs(3),
            default_measurement: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration.  The shim accepts and ignores all
    /// arguments (notably the `--bench` filter cargo passes).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        let warm_up = self.default_warm_up;
        let measurement = self.default_measurement;
        let group = BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            warm_up,
            measurement,
        };
        println!("\nbenchmark group: {}", group.name);
        group
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let warm_up = self.default_warm_up;
        let measurement = self.default_measurement;
        run_benchmark(id, sample_size, warm_up, measurement, f);
        self
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine before sampling starts.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up = t;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.warm_up, self.measurement, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &full,
            self.sample_size,
            self.warm_up,
            self.measurement,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.  (The shim reports as it goes, so this is a no-op.)
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a printable benchmark identifier (mirrors criterion's
/// `IntoBenchmarkId`, which accepts both `&str` and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    /// Total elapsed time across `iterations` calls of the routine.
    elapsed: Duration,
    iterations: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    WarmUp { budget: Duration },
    Sample,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::WarmUp { budget } => {
                let start = Instant::now();
                let mut n = 0u64;
                while start.elapsed() < budget {
                    black_box(routine());
                    n += 1;
                }
                self.elapsed = start.elapsed();
                self.iterations = n;
            }
            Mode::Sample => {
                let start = Instant::now();
                black_box(routine());
                self.elapsed = start.elapsed();
                self.iterations = 1;
            }
        }
    }
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run the routine until the warm-up budget is spent.
    let mut bencher = Bencher {
        mode: Mode::WarmUp { budget: warm_up },
        elapsed: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    let per_iter_estimate = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations.max(1) as u32
    } else {
        Duration::from_millis(1)
    };

    // Cap the sample count so slow routines still respect the measurement
    // budget (criterion scales iteration counts instead; a cap is enough for
    // a progress-reporting shim).
    let budget_samples = if per_iter_estimate.is_zero() {
        sample_size as u64
    } else {
        (measurement.as_nanos() / per_iter_estimate.as_nanos().max(1)).max(1) as u64
    };
    let samples = (sample_size as u64).min(budget_samples).max(1);

    let mut times: Vec<Duration> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut bencher = Bencher {
            mode: Mode::Sample,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<60} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        times.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_benchmark_closure() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3).warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        let mut calls = 0u32;
        group.bench_function("counted", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            calls += 1;
        });
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
