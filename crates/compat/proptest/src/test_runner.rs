//! Test-runner configuration and case outcomes (mirrors
//! `proptest::test_runner`).

/// Configuration for a [`proptest!`](crate::proptest) block; the prelude
/// re-exports this as `ProptestConfig`.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        // Matches proptest's default case count.
        Config { cases: 256 }
    }
}

impl Config {
    /// Configuration running `cases` generated cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`](crate::prop_assume);
    /// another case should run in its place.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}
