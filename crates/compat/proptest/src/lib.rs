//! # proptest (in-tree compatibility shim)
//!
//! Implements the subset of the [`proptest`](https://docs.rs/proptest)
//! API that the SeSeMI test-suites use, as deterministic seeded random
//! testing: the [`proptest!`] macro (both `arg: Type` and `arg in strategy`
//! parameter forms, plus the `#![proptest_config(...)]` header),
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//! [`prop_assume!`], integer-range and [`collection::vec`] strategies, and
//! [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Unlike real proptest there is **no shrinking** — a failing case reports
//! the case number and assertion message only — and generation is seeded
//! per test case from a fixed constant, so runs are fully reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::ops::Range;

pub mod collection;
pub mod test_runner;

/// Items the `use proptest::prelude::*` glob imports.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Strategy,
    };
}

/// A source of random values for one generated test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the deterministic generator for a given test case index.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: StdRng::seed_from_u64(
                0x5E5E_3141_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// Underlying generator access for strategies.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A recipe for generating values of a given type (mirrors
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

/// Types with a default generation recipe (mirrors
/// `proptest::arbitrary::Arbitrary`), used for `arg: Type` parameters of
/// [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draws one value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<f64>()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        rng.rng().fill_bytes(&mut out);
        out
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Default collection size range, matching proptest's 0..100 and
        // deliberately including the empty vector often enough to exercise
        // edge cases.
        let len = rng.rng().gen_range(0usize..100);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Declares property tests.  Accepts an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test] fn name(params) { body }` items whose parameters are either
/// `name: Type` (generated via [`Arbitrary`]) or `name in strategy`
/// (generated via [`Strategy`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

/// Internal: expands each test item declared inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut passed: u64 = 0;
            let mut rejected: u64 = 0;
            let mut attempt: u64 = 0;
            while passed < u64::from(config.cases) {
                // Seed from the attempt counter, not the pass counter, so a
                // rejected draw (prop_assume) retries with fresh inputs.
                let mut __proptest_rng = $crate::TestRng::for_case(attempt);
                attempt += 1;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $crate::__proptest_bind!(__proptest_rng; $($params)*);
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        // Rejections do not count toward the configured case
                        // total; give up if assumptions almost never hold,
                        // like proptest's global rejection cap.
                        rejected += 1;
                        assert!(
                            rejected < 4 * u64::from(config.cases).max(256),
                            "property test {}: too many rejected cases",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "property test {} failed at case {}: {message}",
                            stringify!($name),
                            attempt - 1,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Internal: binds one [`proptest!`] parameter list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

/// Skips the current generated case when its inputs do not satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_strategy_params_bind(v: Vec<u8>, cut in 0usize..16) {
            let cut = cut.min(v.len());
            let (a, b) = v.split_at(cut);
            prop_assert_eq!(a.len() + b.len(), v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_and_assume_work(x: u64) {
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
        }
    }

    proptest! {
        #[test]
        fn collection_vec_respects_bounds(v in crate::collection::vec(0u64..10, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    // Declared without #[test] so it only runs when driven by the
    // should_panic test below.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        fn always_fails(x: u64) {
            prop_assert!(x == x.wrapping_add(1), "impossible");
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        always_fails();
    }
}
