//! Collection strategies (mirrors `proptest::collection`).

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// Strategy producing vectors whose elements come from `element` and whose
/// length is drawn from `length`.
pub struct VecStrategy<S> {
    element: S,
    length: Range<usize>,
}

/// Creates a [`VecStrategy`]; mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
    assert!(length.start < length.end, "empty length range");
    VecStrategy { element, length }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.length.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
