//! # parking_lot (in-tree compatibility shim)
//!
//! The subset of the [`parking_lot` 0.12 API](https://docs.rs/parking_lot/0.12)
//! that the SeSeMI workspace uses — [`Mutex`] and [`RwLock`] with
//! non-poisoning, `Result`-free guards — implemented over
//! [`std::sync`] because this build environment has no access to crates.io.
//!
//! Poisoning is deliberately swallowed (`parking_lot` has no poisoning): if a
//! thread panics while holding a lock, later acquisitions simply receive the
//! inner value as-is, exactly matching `parking_lot` semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no poisoning `Result`), mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`,
    /// so no locking is necessary).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose `read()` / `write()` return guards directly
/// (no poisoning `Result`), mirroring `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn poisoned_mutex_still_yields_value() {
        let m = Arc::new(Mutex::new(3));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 3);
    }
}
