//! Deterministic mock generators for tests.

use crate::{fill_bytes_via_next_u64, RngCore};

/// A "generator" that returns an arithmetic sequence: `start`,
/// `start + step`, `start + 2·step`, … (wrapping).  Mirrors
/// `rand::rngs::mock::StepRng` and is only useful for tests that need a
/// fully predictable byte stream.
#[derive(Clone, Debug)]
pub struct StepRng {
    value: u64,
    step: u64,
}

impl StepRng {
    /// Creates the sequence starting at `start` and advancing by `step`.
    #[must_use]
    pub fn new(start: u64, step: u64) -> Self {
        StepRng { value: start, step }
    }
}

impl RngCore for StepRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        let out = self.value;
        self.value = self.value.wrapping_add(self.step);
        out
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_next_u64(self, dest);
    }
}
