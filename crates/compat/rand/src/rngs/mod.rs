//! Concrete generators: [`StdRng`], [`OsRng`] and the [`mock`] generators.

use crate::{fill_bytes_via_next_u64, Error, RngCore, SeedableRng};

pub mod mock;

/// The workspace's standard seedable PRNG.
///
/// Implemented as **xoshiro256++** (Blackman & Vigna), seeded through
/// SplitMix64 — statistically strong, tiny and fast.  Note this differs from
/// upstream `rand 0.8`, whose `StdRng` is ChaCha12: seeded streams are
/// deterministic here too, but the concrete values differ from upstream.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_next_u64(self, dest);
    }
}

/// Operating-system entropy source.
///
/// Reads `/dev/urandom`; if that fails (e.g. in an exotic sandbox) it falls
/// back to hashing the current time, the process id and a process-global
/// counter through SplitMix64 so callers still receive unpredictable,
/// non-repeating bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct OsRng;

impl OsRng {
    fn fallback_fill(dest: &mut [u8]) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let mut state = nanos
            ^ (std::process::id() as u64).rotate_left(32)
            ^ COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for chunk in dest.chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl RngCore for OsRng {
    fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }
    fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        use std::io::Read;
        let filled = std::fs::File::open("/dev/urandom")
            .and_then(|mut f| f.read_exact(dest))
            .is_ok();
        if !filled {
            Self::fallback_fill(dest);
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
