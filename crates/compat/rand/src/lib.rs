//! # rand (in-tree compatibility shim)
//!
//! A from-scratch implementation of the subset of the
//! [`rand` 0.8 API](https://docs.rs/rand/0.8) that the SeSeMI workspace
//! uses.  The build
//! environment for this reproduction has no access to crates.io, so the
//! workspace vendors the surface it needs:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits,
//! * [`rngs::StdRng`] — a seedable, statistically solid PRNG
//!   (xoshiro256++ seeded via SplitMix64),
//! * [`rngs::OsRng`] — operating-system entropy (`/dev/urandom`),
//! * [`rngs::mock::StepRng`] — the deterministic arithmetic-sequence
//!   generator used by tests,
//! * [`Error`] — the fallible-generator error type.
//!
//! Unlike the real `rand`, [`rngs::StdRng`] here is xoshiro256++ rather than
//! ChaCha12, so seeded value *streams* differ from upstream `rand` — but all
//! determinism guarantees (same seed ⇒ same stream) hold, which is what the
//! SeSeMI simulations and tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

pub mod rngs;

/// Error type reported by fallible generator methods such as
/// [`RngCore::try_fill_bytes`].
#[derive(Debug)]
pub struct Error {
    message: &'static str,
}

impl Error {
    /// Creates an error with a static description.
    #[must_use]
    pub fn new(message: &'static str) -> Self {
        Error { message }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random-number generator error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 bits of randomness.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 bits of randomness.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure instead of
    /// panicking.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Fills a byte slice from successive `next_u64` outputs (little-endian),
/// the standard `rand_core` helper behaviour.
pub(crate) fn fill_bytes_via_next_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rest = chunks.into_remainder();
    if !rest.is_empty() {
        let word = rng.next_u64().to_le_bytes();
        rest.copy_from_slice(&word[..rest.len()]);
    }
}

/// A generator that can be instantiated from a fixed seed (mirrors
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` by expanding it with SplitMix64,
    /// exactly like `rand_core`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A range that a uniform value can be sampled from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Compute the width in i128 so signed ranges wider than the
                // type's positive half are not sign-extended (every supported
                // type's width fits in u64 because start < end).
                let width = ((self.end as i128) - (self.start as i128)) as u64;
                // Widening-multiply rejection sampling (Lemire) keeps the
                // draw unbiased for every width; rejection is vanishingly
                // rare for the small widths the simulations use.
                let threshold = width.wrapping_neg() % width;
                loop {
                    let m = (rng.next_u64() as u128) * (width as u128);
                    if (m as u64) < threshold {
                        continue;
                    }
                    return self.start.wrapping_add((m >> 64) as $t);
                }
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// A type the [`Rng::gen`] method can produce (mirrors sampling from
/// `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Convenience extension methods over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniformly distributed value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial returning `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced zeros");
            }
        }
    }

    #[test]
    fn gen_range_int_stays_in_bounds_and_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            seen_low |= x == 3;
            seen_high |= x == 6;
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn gen_range_signed_full_width_stays_in_bounds() {
        // Regression: the i32 width must not be sign-extended when the range
        // spans more than the type's positive half.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.gen_range(i32::MIN..i32::MAX);
            assert!(x < i32::MAX);
            let y = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&y));
        }
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn step_rng_is_an_arithmetic_sequence() {
        let mut rng = StepRng::new(7, 11);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 18);
        assert_eq!(rng.next_u64(), 29);
    }

    #[test]
    fn os_rng_produces_distinct_buffers() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        rngs::OsRng.fill_bytes(&mut a);
        rngs::OsRng.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
