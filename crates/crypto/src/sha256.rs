//! SHA-256 (FIPS 180-4).
//!
//! SeSeMI uses SHA-256 in three places: deriving owner/user identities from
//! their long-term keys (`id ← SHA256(K_id)`, Algorithm 1 line 6), computing
//! the enclave measurement (`MRENCLAVE`) over enclave code and configuration,
//! and as the hash underlying HMAC/HKDF for the RA-TLS handshake.

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block size of SHA-256 in bytes.
pub const BLOCK_LEN: usize = 64;

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest as a byte slice.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    #[must_use]
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(DIGEST_LEN * 2);
        for byte in self.0 {
            out.push(char::from_digit((byte >> 4) as u32, 16).expect("nibble < 16"));
            out.push(char::from_digit((byte & 0xF) as u32, 16).expect("nibble < 16"));
        }
        out
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(value: [u8; DIGEST_LEN]) -> Self {
        Digest(value)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        let mut data = data.as_ref();
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }

        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            let mut exact = [0u8; BLOCK_LEN];
            exact.copy_from_slice(block);
            self.compress(&exact);
            data = rest;
        }

        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
        self
    }

    /// Finishes the hash and returns the digest, consuming the hasher.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append the 0x80 terminator then zero padding to 56 mod 64, then the
        // 64-bit big-endian message length.
        self.update([0x80u8]);
        while self.buffered != 56 {
            self.update([0u8]);
        }
        self.update(bit_len.to_be_bytes());

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
#[must_use]
pub fn sha256(data: impl AsRef<[u8]>) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Convenience: hash the concatenation of several parts with unambiguous
/// length framing (each part is prefixed by its 64-bit little-endian length).
///
/// Used to build enclave measurements and composite identities without
/// worrying about extension/concatenation ambiguities.
#[must_use]
pub fn sha256_parts(parts: &[&[u8]]) -> Digest {
    let mut hasher = Sha256::new();
    for part in parts {
        hasher.update((part.len() as u64).to_le_bytes());
        hasher.update(part);
    }
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(d: &Digest) -> String {
        d.to_hex()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut hasher = Sha256::new();
        for chunk in data.chunks(17) {
            hasher.update(chunk);
        }
        assert_eq!(hasher.finalize(), sha256(&data));
    }

    #[test]
    fn digest_display_and_debug() {
        let d = sha256(b"abc");
        assert_eq!(d.to_string().len(), 64);
        assert!(format!("{d:?}").starts_with("Digest("));
    }

    #[test]
    fn parts_hash_is_framing_sensitive() {
        // Without framing these two would collide.
        let a = sha256_parts(&[b"ab", b"c"]);
        let b = sha256_parts(&[b"a", b"bc"]);
        assert_ne!(a, b);
        // And the same parts always hash identically.
        assert_eq!(sha256_parts(&[b"ab", b"c"]), sha256_parts(&[b"ab", b"c"]));
    }

    proptest! {
        #[test]
        fn chunked_updates_match_oneshot(data: Vec<u8>, split in 0usize..64) {
            let mut hasher = Sha256::new();
            if data.is_empty() {
                hasher.update([]);
            } else {
                let cut = split % data.len().max(1);
                hasher.update(&data[..cut]);
                hasher.update(&data[cut..]);
            }
            prop_assert_eq!(hasher.finalize(), sha256(&data));
        }

        #[test]
        fn different_inputs_rarely_collide(a: Vec<u8>, b: Vec<u8>) {
            prop_assume!(a != b);
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }
}
