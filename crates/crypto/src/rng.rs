//! Randomness helpers.
//!
//! The SeSeMI reproduction needs two kinds of randomness: genuinely random
//! keys in examples and live systems, and *deterministic* randomness inside
//! the experiment harness so every figure and table can be regenerated
//! bit-for-bit from a seed.  [`SessionRng`] covers both: it is a small
//! ChaCha-based deterministic generator seeded either from the OS or from an
//! explicit experiment seed.

use crate::chacha20::{chacha20_block, BLOCK_LEN};
use rand::RngCore;

/// A deterministic cryptographically-strong generator (ChaCha20-based).
///
/// This is *not* the simulator RNG (which lives in `sesemi-sim`); it is used
/// for key material in tests/examples where reproducibility matters more than
/// entropy, and can be seeded from the OS for real deployments.
#[derive(Clone, Debug)]
pub struct SessionRng {
    key: [u8; 32],
    counter: u64,
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
}

impl SessionRng {
    /// Creates a generator from a 64-bit seed (deterministic).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let digest = crate::sha256::sha256_parts(&[b"sesemi-session-rng", &seed.to_le_bytes()]);
        SessionRng {
            key: *digest.as_bytes(),
            counter: 0,
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
        }
    }

    /// Creates a generator seeded from the operating system.
    #[must_use]
    pub fn from_os_entropy() -> Self {
        let mut seed = [0u8; 8];
        rand::rngs::OsRng.fill_bytes(&mut seed);
        Self::from_seed(u64::from_le_bytes(seed))
    }

    fn refill(&mut self) {
        let counter_low = (self.counter & 0xffff_ffff) as u32;
        let counter_high = (self.counter >> 32) as u32;
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&counter_high.to_le_bytes());
        self.buffer = chacha20_block(&self.key, counter_low, &nonce);
        self.counter = self.counter.wrapping_add(1);
        self.buffered = BLOCK_LEN;
    }
}

impl RngCore for SessionRng {
    fn next_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.fill_bytes(&mut bytes);
        u32::from_le_bytes(bytes)
    }

    fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.fill_bytes(&mut bytes);
        u64::from_le_bytes(bytes)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut written = 0usize;
        while written < dest.len() {
            if self.buffered == 0 {
                self.refill();
            }
            let take = (dest.len() - written).min(self.buffered);
            let start = BLOCK_LEN - self.buffered;
            dest[written..written + take].copy_from_slice(&self.buffer[start..start + take]);
            self.buffered -= take;
            written += take;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SessionRng::from_seed(42);
        let mut b = SessionRng::from_seed(42);
        let mut buf_a = [0u8; 100];
        let mut buf_b = [0u8; 100];
        a.fill_bytes(&mut buf_a);
        b.fill_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SessionRng::from_seed(1);
        let mut b = SessionRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chunked_reads_match_bulk_reads() {
        let mut a = SessionRng::from_seed(7);
        let mut b = SessionRng::from_seed(7);
        let mut bulk = [0u8; 96];
        a.fill_bytes(&mut bulk);
        let mut chunked = [0u8; 96];
        for chunk in chunked.chunks_mut(7) {
            b.fill_bytes(chunk);
        }
        assert_eq!(bulk, chunked);
    }

    #[test]
    fn os_seeded_generator_produces_output() {
        let mut rng = SessionRng::from_os_entropy();
        let a = rng.next_u64();
        let b = rng.next_u64();
        // Not a strong statistical test, just a smoke check that the stream
        // advances.
        assert_ne!(a, b);
    }
}
