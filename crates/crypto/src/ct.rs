//! Constant-time helpers.
//!
//! Authentication-tag comparison must not leak how many prefix bytes matched,
//! otherwise an attacker interacting with the KeyService or SeMIRT enclaves
//! could forge tags byte by byte.  These helpers avoid data-dependent early
//! exits; the compiler is discouraged from re-introducing them by folding the
//! result through a volatile-free but opaque accumulation.

/// Compares two byte slices in constant time with respect to their contents.
///
/// Returns `false` immediately if the lengths differ (length is considered
/// public information for all uses in this workspace: tags and digests have
/// fixed, well-known sizes).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Map 0 -> true, nonzero -> false without a data-dependent branch on the
    // individual bytes.
    diff_is_zero(diff)
}

/// Constant-time selection between two bytes: returns `a` if `choice` is 1,
/// `b` if `choice` is 0.  `choice` must be 0 or 1.
#[must_use]
pub fn ct_select_u8(choice: u8, a: u8, b: u8) -> u8 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // 0x00 or 0xFF
    (a & mask) | (b & !mask)
}

/// Constant-time conditional swap of two 64-bit limbs arrays, used by the
/// X25519 Montgomery ladder.
pub fn ct_swap_u64x5(choice: u64, a: &mut [u64; 5], b: &mut [u64; 5]) {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg();
    for i in 0..5 {
        let t = mask & (a[i] ^ b[i]);
        a[i] ^= t;
        b[i] ^= t;
    }
}

#[inline]
fn diff_is_zero(diff: u8) -> bool {
    // (diff | diff.wrapping_neg()) has its MSB set iff diff != 0.
    let is_nonzero = ((diff as u16 | (diff as u16).wrapping_neg()) >> 8) & 1;
    is_nonzero == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_slices_compare_equal() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(&[0u8; 32], &[0u8; 32]));
    }

    #[test]
    fn different_slices_compare_unequal() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(&[0u8; 16], &[1u8; 16]));
    }

    #[test]
    fn select_picks_correct_value() {
        assert_eq!(ct_select_u8(1, 0xAA, 0x55), 0xAA);
        assert_eq!(ct_select_u8(0, 0xAA, 0x55), 0x55);
    }

    #[test]
    fn swap_behaves_like_conditional_swap() {
        let mut a = [1, 2, 3, 4, 5];
        let mut b = [6, 7, 8, 9, 10];
        ct_swap_u64x5(0, &mut a, &mut b);
        assert_eq!(a, [1, 2, 3, 4, 5]);
        ct_swap_u64x5(1, &mut a, &mut b);
        assert_eq!(a, [6, 7, 8, 9, 10]);
        assert_eq!(b, [1, 2, 3, 4, 5]);
    }

    proptest! {
        #[test]
        fn ct_eq_matches_slice_eq(a: Vec<u8>, b: Vec<u8>) {
            prop_assert_eq!(ct_eq(&a, &b), a == b);
        }

        #[test]
        fn ct_eq_is_reflexive(a: Vec<u8>) {
            prop_assert!(ct_eq(&a, &a));
        }
    }
}
