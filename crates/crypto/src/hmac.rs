//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used by the RA-TLS handshake transcripts and by [`crate::hkdf`] for key
//! derivation, and available to enclaves for authenticating control messages.

use crate::ct::ct_eq;
use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Length of an HMAC-SHA-256 tag in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a new MAC instance keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(digest.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(ipad);
        let mut outer = Sha256::new();
        outer.update(opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Finishes and returns the 32-byte tag.
    #[must_use]
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Finishes and verifies the tag against `expected` in constant time.
    #[must_use]
    pub fn verify(self, expected: &[u8]) -> bool {
        let tag = self.finalize();
        ct_eq(tag.as_bytes(), expected)
    }
}

/// One-shot HMAC-SHA-256.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_correct_and_rejects_tampered_tags() {
        let tag = hmac_sha256(b"key", b"message");
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"message");
        assert!(mac.verify(tag.as_bytes()));

        let mut bad = *tag.as_bytes();
        bad[0] ^= 1;
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"message");
        assert!(!mac.verify(&bad));
    }

    proptest! {
        #[test]
        fn incremental_matches_oneshot(key: Vec<u8>, msg: Vec<u8>, cut in 0usize..128) {
            let oneshot = hmac_sha256(&key, &msg);
            let mut mac = HmacSha256::new(&key);
            let cut = cut.min(msg.len());
            mac.update(&msg[..cut]);
            mac.update(&msg[cut..]);
            prop_assert_eq!(mac.finalize(), oneshot);
        }

        #[test]
        fn different_messages_give_different_tags(key: Vec<u8>, m1: Vec<u8>, m2: Vec<u8>) {
            prop_assume!(m1 != m2);
            prop_assert_ne!(hmac_sha256(&key, &m1), hmac_sha256(&key, &m2));
        }
    }
}
