//! AES-128-GCM authenticated encryption (NIST SP 800-38D).
//!
//! This is the paper's choice for model and request encryption (§V: "We use
//! AES-GCM for model and request encryption").  The construction is CTR-mode
//! AES-128 with a GHASH tag over the associated data and ciphertext.

use crate::aead::{Aead, AeadKey, Nonce, TAG_LEN};
use crate::aes::{Aes128, BLOCK_LEN};
use crate::ct::ct_eq;
use crate::error::CryptoError;

/// AES-128-GCM cipher instance.
#[derive(Clone)]
pub struct Aes128Gcm {
    aes: Aes128,
    /// GHASH subkey H = AES_K(0^128).
    h: u128,
}

impl Aes128Gcm {
    /// Creates a GCM instance for `key`.
    #[must_use]
    pub fn new(key: &AeadKey) -> Self {
        let aes = Aes128::new(key.as_bytes());
        let h_block = aes.encrypt_block_copy(&[0u8; BLOCK_LEN]);
        Aes128Gcm {
            aes,
            h: u128::from_be_bytes(h_block),
        }
    }

    fn counter_block(nonce: &Nonce, counter: u32) -> [u8; BLOCK_LEN] {
        let mut block = [0u8; BLOCK_LEN];
        block[..12].copy_from_slice(nonce.as_bytes());
        block[12..].copy_from_slice(&counter.to_be_bytes());
        block
    }

    fn ctr_xor(&self, nonce: &Nonce, data: &mut [u8]) {
        let mut counter = 2u32; // counter 1 is reserved for the tag mask
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let keystream = self
                .aes
                .encrypt_block_copy(&Self::counter_block(nonce, counter));
            for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
                *byte ^= ks;
            }
            counter = counter.wrapping_add(1);
        }
    }

    fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; BLOCK_LEN] {
        let mut y = 0u128;
        for chunk in aad.chunks(BLOCK_LEN) {
            y = gf_mul(y ^ block_to_u128(chunk), self.h);
        }
        for chunk in ciphertext.chunks(BLOCK_LEN) {
            y = gf_mul(y ^ block_to_u128(chunk), self.h);
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        y = gf_mul(y ^ lengths, self.h);
        y.to_be_bytes()
    }

    fn tag(&self, nonce: &Nonce, aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        let ghash = self.ghash(aad, ciphertext);
        let mask = self.aes.encrypt_block_copy(&Self::counter_block(nonce, 1));
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = ghash[i] ^ mask[i];
        }
        tag
    }
}

impl Aead for Aes128Gcm {
    fn seal(&self, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        self.ctr_xor(nonce, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    fn open(&self, nonce: &Nonce, ciphertext: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < TAG_LEN {
            return Err(CryptoError::AuthenticationFailed);
        }
        let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
        let expected = self.tag(nonce, aad, body);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut plaintext = body.to_vec();
        self.ctr_xor(nonce, &mut plaintext);
        Ok(plaintext)
    }
}

fn block_to_u128(chunk: &[u8]) -> u128 {
    let mut block = [0u8; BLOCK_LEN];
    block[..chunk.len()].copy_from_slice(chunk);
    u128::from_be_bytes(block)
}

/// Multiplication in GF(2^128) with the GCM polynomial
/// x^128 + x^7 + x^2 + x + 1 (bit-reflected convention of SP 800-38D).
fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    fn key_from_hex(s: &str) -> AeadKey {
        let bytes = unhex(s);
        let mut key = [0u8; 16];
        key.copy_from_slice(&bytes);
        AeadKey::from_bytes(key)
    }

    fn nonce_from_hex(s: &str) -> Nonce {
        let bytes = unhex(s);
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&bytes);
        Nonce::from_bytes(nonce)
    }

    // NIST GCM test case 1: empty plaintext, empty AAD, zero key/IV.
    #[test]
    fn nist_test_case_1_empty() {
        let cipher = Aes128Gcm::new(&key_from_hex("00000000000000000000000000000000"));
        let nonce = nonce_from_hex("000000000000000000000000");
        let out = cipher.seal(&nonce, b"", b"");
        assert_eq!(hex(&out), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    // NIST GCM test case 2: single zero block.
    #[test]
    fn nist_test_case_2_zero_block() {
        let cipher = Aes128Gcm::new(&key_from_hex("00000000000000000000000000000000"));
        let nonce = nonce_from_hex("000000000000000000000000");
        let out = cipher.seal(&nonce, &[0u8; 16], b"");
        assert_eq!(
            hex(&out),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
    }

    // NIST GCM test case 3: 4-block plaintext, no AAD.
    #[test]
    fn nist_test_case_3() {
        let cipher = Aes128Gcm::new(&key_from_hex("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_from_hex("cafebabefacedbaddecaf888");
        let plaintext = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let out = cipher.seal(&nonce, &plaintext, b"");
        assert_eq!(
            hex(&out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f59854d5c2af327cd64a62cf35abd2ba6fab4"
        );
    }

    // NIST GCM test case 4: with AAD and 60-byte plaintext.
    #[test]
    fn nist_test_case_4_with_aad() {
        let cipher = Aes128Gcm::new(&key_from_hex("feffe9928665731c6d6a8f9467308308"));
        let nonce = nonce_from_hex("cafebabefacedbaddecaf888");
        let plaintext = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let out = cipher.seal(&nonce, &plaintext, &aad);
        assert_eq!(
            hex(&out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e0915bc94fbc3221a5db94fae95ae7121a47"
        );
    }

    #[test]
    fn open_rejects_tampered_ciphertext_tag_and_aad() {
        let key = AeadKey::from_bytes([3u8; 16]);
        let cipher = Aes128Gcm::new(&key);
        let nonce = Nonce::from_bytes([9u8; 12]);
        let sealed = cipher.seal(&nonce, b"electronic health record", b"request-42");

        // Correct open works.
        assert_eq!(
            cipher.open(&nonce, &sealed, b"request-42").unwrap(),
            b"electronic health record"
        );
        // Flip a ciphertext bit.
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert!(cipher.open(&nonce, &bad, b"request-42").is_err());
        // Flip a tag bit.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(cipher.open(&nonce, &bad, b"request-42").is_err());
        // Wrong AAD.
        assert!(cipher.open(&nonce, &sealed, b"request-43").is_err());
        // Wrong nonce.
        assert!(cipher
            .open(&Nonce::from_bytes([8u8; 12]), &sealed, b"request-42")
            .is_err());
        // Truncated below tag size.
        assert!(cipher.open(&nonce, &sealed[..8], b"request-42").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip(key: [u8; 16], nonce: [u8; 12], plaintext: Vec<u8>, aad: Vec<u8>) {
            let cipher = Aes128Gcm::new(&AeadKey::from_bytes(key));
            let nonce = Nonce::from_bytes(nonce);
            let sealed = cipher.seal(&nonce, &plaintext, &aad);
            prop_assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
            prop_assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), plaintext);
        }

        #[test]
        fn wrong_key_fails(k1: [u8; 16], k2: [u8; 16], plaintext: Vec<u8>) {
            prop_assume!(k1 != k2);
            let c1 = Aes128Gcm::new(&AeadKey::from_bytes(k1));
            let c2 = Aes128Gcm::new(&AeadKey::from_bytes(k2));
            let nonce = Nonce::from_bytes([0u8; 12]);
            let sealed = c1.seal(&nonce, &plaintext, b"");
            prop_assert!(c2.open(&nonce, &sealed, b"").is_err());
        }
    }
}
