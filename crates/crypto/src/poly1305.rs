//! Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! The arithmetic is carried out over 2^130 - 5 using five 26-bit limbs held
//! in `u64`s with `u128` intermediates, which keeps the implementation short
//! and obviously-correct at the cost of some speed.

/// Poly1305 key length (r || s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Computes the Poly1305 tag of `message` under the one-time key `key`.
#[must_use]
pub fn poly1305(key: &[u8; KEY_LEN], message: &[u8]) -> [u8; TAG_LEN] {
    // Clamp r as per the RFC.
    let mut r_bytes = [0u8; 16];
    r_bytes.copy_from_slice(&key[..16]);
    r_bytes[3] &= 15;
    r_bytes[7] &= 15;
    r_bytes[11] &= 15;
    r_bytes[15] &= 15;
    r_bytes[4] &= 252;
    r_bytes[8] &= 252;
    r_bytes[12] &= 252;

    let r = u128::from_le_bytes(r_bytes);
    let s = u128::from_le_bytes(key[16..32].try_into().expect("16 bytes"));

    // Split r into 26-bit limbs.
    let r0 = (r & 0x3ffffff) as u64;
    let r1 = ((r >> 26) & 0x3ffffff) as u64;
    let r2 = ((r >> 52) & 0x3ffffff) as u64;
    let r3 = ((r >> 78) & 0x3ffffff) as u64;
    let r4 = ((r >> 104) & 0x3ffffff) as u64;

    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let mut h0 = 0u64;
    let mut h1 = 0u64;
    let mut h2 = 0u64;
    let mut h3 = 0u64;
    let mut h4 = 0u64;

    for chunk in message.chunks(16) {
        // Load the block with the high "1" bit appended.
        let mut block = [0u8; 17];
        block[..chunk.len()].copy_from_slice(chunk);
        block[chunk.len()] = 1;

        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap()) as u64;
        let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap()) as u64;
        let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap()) as u64;
        let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap()) as u64;
        let t4 = block[16] as u64;

        h0 += t0 & 0x3ffffff;
        h1 += ((t0 >> 26) | (t1 << 6)) & 0x3ffffff;
        h2 += ((t1 >> 20) | (t2 << 12)) & 0x3ffffff;
        h3 += ((t2 >> 14) | (t3 << 18)) & 0x3ffffff;
        h4 += (t3 >> 8) | (t4 << 24);

        // h *= r (mod 2^130 - 5).
        let d0 = h0 as u128 * r0 as u128
            + h1 as u128 * s4 as u128
            + h2 as u128 * s3 as u128
            + h3 as u128 * s2 as u128
            + h4 as u128 * s1 as u128;
        let d1 = h0 as u128 * r1 as u128
            + h1 as u128 * r0 as u128
            + h2 as u128 * s4 as u128
            + h3 as u128 * s3 as u128
            + h4 as u128 * s2 as u128;
        let d2 = h0 as u128 * r2 as u128
            + h1 as u128 * r1 as u128
            + h2 as u128 * r0 as u128
            + h3 as u128 * s4 as u128
            + h4 as u128 * s3 as u128;
        let d3 = h0 as u128 * r3 as u128
            + h1 as u128 * r2 as u128
            + h2 as u128 * r1 as u128
            + h3 as u128 * r0 as u128
            + h4 as u128 * s4 as u128;
        let d4 = h0 as u128 * r4 as u128
            + h1 as u128 * r3 as u128
            + h2 as u128 * r2 as u128
            + h3 as u128 * r1 as u128
            + h4 as u128 * r0 as u128;

        // Carry propagation.
        let mut carry = (d0 >> 26) as u64;
        h0 = (d0 as u64) & 0x3ffffff;
        let d1 = d1 + carry as u128;
        carry = (d1 >> 26) as u64;
        h1 = (d1 as u64) & 0x3ffffff;
        let d2 = d2 + carry as u128;
        carry = (d2 >> 26) as u64;
        h2 = (d2 as u64) & 0x3ffffff;
        let d3 = d3 + carry as u128;
        carry = (d3 >> 26) as u64;
        h3 = (d3 as u64) & 0x3ffffff;
        let d4 = d4 + carry as u128;
        carry = (d4 >> 26) as u64;
        h4 = (d4 as u64) & 0x3ffffff;
        h0 += carry * 5;
        carry = h0 >> 26;
        h0 &= 0x3ffffff;
        h1 += carry;
    }

    // Full carry.
    let mut carry = h1 >> 26;
    h1 &= 0x3ffffff;
    h2 += carry;
    carry = h2 >> 26;
    h2 &= 0x3ffffff;
    h3 += carry;
    carry = h3 >> 26;
    h3 &= 0x3ffffff;
    h4 += carry;
    carry = h4 >> 26;
    h4 &= 0x3ffffff;
    h0 += carry * 5;
    carry = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += carry;

    // Compute h + -p to check whether h >= p.
    let mut g0 = h0.wrapping_add(5);
    carry = g0 >> 26;
    g0 &= 0x3ffffff;
    let mut g1 = h1.wrapping_add(carry);
    carry = g1 >> 26;
    g1 &= 0x3ffffff;
    let mut g2 = h2.wrapping_add(carry);
    carry = g2 >> 26;
    g2 &= 0x3ffffff;
    let mut g3 = h3.wrapping_add(carry);
    carry = g3 >> 26;
    g3 &= 0x3ffffff;
    let g4 = h4.wrapping_add(carry).wrapping_sub(1 << 26);

    // Select h if h < p, else g.
    let mask = (g4 >> 63).wrapping_sub(1); // all ones if g4 did not underflow
    let h0 = (h0 & !mask) | (g0 & mask);
    let h1 = (h1 & !mask) | (g1 & mask);
    let h2 = (h2 & !mask) | (g2 & mask);
    let h3 = (h3 & !mask) | (g3 & mask);
    let h4 = (h4 & !mask) | (g4 & mask & 0x3ffffff);

    // Recombine into 128 bits and add s.
    let h: u128 = (h0 as u128)
        | ((h1 as u128) << 26)
        | ((h2 as u128) << 52)
        | ((h3 as u128) << 78)
        | ((h4 as u128) << 104);
    let tag = h.wrapping_add(s);
    tag.to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_vector() {
        let key = unhex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
        let mut key_arr = [0u8; 32];
        key_arr.copy_from_slice(&key);
        let tag = poly1305(&key_arr, b"Cryptographic Forum Research Group");
        assert_eq!(tag.to_vec(), unhex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    // RFC 8439 Appendix A.3 test vector #1: all-zero key and message.
    #[test]
    fn zero_key_zero_message() {
        let key = [0u8; 32];
        let msg = [0u8; 64];
        assert_eq!(poly1305(&key, &msg), [0u8; 16]);
    }

    // RFC 8439 Appendix A.3 test vector #2.
    #[test]
    fn appendix_a3_vector_2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&unhex("36e5f6b5c5e06070f0efca96227a863e"));
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = poly1305(&key, msg);
        assert_eq!(tag.to_vec(), unhex("36e5f6b5c5e06070f0efca96227a863e"));
    }

    #[test]
    fn tag_depends_on_message_and_key() {
        let key_a = [1u8; 32];
        let key_b = [2u8; 32];
        assert_ne!(poly1305(&key_a, b"msg"), poly1305(&key_b, b"msg"));
        assert_ne!(poly1305(&key_a, b"msg1"), poly1305(&key_a, b"msg2"));
    }
}
