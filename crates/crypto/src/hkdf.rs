//! HKDF with HMAC-SHA-256 (RFC 5869).
//!
//! The RA-TLS handshake (paper Appendix A) derives channel keys from the
//! X25519 shared secret and the attestation transcript; HKDF provides the
//! extract-and-expand construction for that derivation.

use crate::hmac::HmacSha256;
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: turns input keying material into a pseudo-random key.
#[must_use]
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    let salt: &[u8] = if salt.is_empty() {
        &[0u8; DIGEST_LEN]
    } else {
        salt
    };
    let mut mac = HmacSha256::new(salt);
    mac.update(ikm);
    *mac.finalize().as_bytes()
}

/// HKDF-Expand: expands a pseudo-random key into `out.len()` bytes of output
/// keying material bound to `info`.
///
/// # Panics
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit); all
/// callers in this workspace request far less.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * DIGEST_LEN,
        "HKDF-Expand output limited to 255 blocks"
    );
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut offset = 0usize;
    while offset < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update([counter]);
        let block = mac.finalize();
        let take = (out.len() - offset).min(DIGEST_LEN);
        out[offset..offset + take].copy_from_slice(&block.as_bytes()[..take]);
        previous = block.as_bytes().to_vec();
        offset += take;
        counter = counter.checked_add(1).expect("HKDF block counter overflow");
    }
}

/// One-shot HKDF (extract then expand).
#[must_use]
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = hkdf_extract(salt, ikm);
    let mut out = vec![0u8; len];
    hkdf_expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let okm = hkdf(&salt, &ikm, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_is_prefix_consistent() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut long = [0u8; 64];
        let mut short = [0u8; 16];
        hkdf_expand(&prk, b"ctx", &mut long);
        hkdf_expand(&prk, b"ctx", &mut short);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    #[should_panic(expected = "255 blocks")]
    fn expand_rejects_oversized_output() {
        let prk = [0u8; DIGEST_LEN];
        let mut out = vec![0u8; 255 * DIGEST_LEN + 1];
        hkdf_expand(&prk, b"", &mut out);
    }

    proptest! {
        #[test]
        fn different_info_gives_independent_keys(
            salt: Vec<u8>, ikm: Vec<u8>, i1: Vec<u8>, i2: Vec<u8>
        ) {
            prop_assume!(i1 != i2);
            prop_assert_ne!(hkdf(&salt, &ikm, &i1, 32), hkdf(&salt, &ikm, &i2, 32));
        }

        #[test]
        fn output_length_is_honoured(len in 0usize..200) {
            prop_assert_eq!(hkdf(b"s", b"k", b"i", len).len(), len);
        }
    }
}
