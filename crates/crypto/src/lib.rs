//! # sesemi-crypto
//!
//! From-scratch cryptographic primitives used throughout the SeSeMI
//! reproduction.  The paper (§V) encrypts models and requests with AES-GCM and
//! establishes RA-TLS channels between clients, the KeyService enclave and
//! SeMIRT enclaves.  This crate provides every primitive those protocols need
//! without any external cryptography dependency:
//!
//! * [`sha256`](mod@sha256) — SHA-256 hashing (used for owner/user identities and enclave
//!   measurement values, `MRENCLAVE`).
//! * [`hmac`] / [`hkdf`] — keyed MACs and key derivation for session keys.
//! * [`aes`] / [`gcm`] — AES-128 and AES-128-GCM authenticated encryption
//!   (the paper's choice for model and request encryption).
//! * [`chacha20`] / [`poly1305`] / [`chacha20poly1305`] — an alternative AEAD
//!   suite used for RA-TLS record protection.
//! * [`x25519`] — Diffie–Hellman key agreement for the RA-TLS handshake.
//! * [`aead`] — a common [`aead::Aead`] trait plus key / nonce types.
//! * [`ct`] — constant-time comparison helpers.
//!
//! ## Security disclaimer
//!
//! The implementations follow the published specifications (FIPS 180-4,
//! RFC 2104, RFC 5869, NIST SP 800-38D, RFC 8439, RFC 7748) and are validated
//! against the official test vectors in this crate's test-suite, but they have
//! not been audited and make no claims about side-channel resistance beyond the
//! constant-time tag comparisons.  They exist so the reproduction is fully
//! self-contained, exactly like the paper's use of the SGX SDK crypto library.
//!
//! ## Example
//!
//! ```
//! use sesemi_crypto::aead::{Aead, AeadKey, Nonce};
//! use sesemi_crypto::gcm::Aes128Gcm;
//!
//! let key = AeadKey::from_bytes([7u8; 16]);
//! let cipher = Aes128Gcm::new(&key);
//! let nonce = Nonce::from_bytes([1u8; 12]);
//! let ciphertext = cipher.seal(&nonce, b"model bytes", b"model-id");
//! let plaintext = cipher.open(&nonce, &ciphertext, b"model-id").unwrap();
//! assert_eq!(plaintext, b"model bytes");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod aes;
pub mod chacha20;
pub mod chacha20poly1305;
pub mod ct;
pub mod error;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod rng;
pub mod sha256;
pub mod x25519;

pub use aead::{Aead, AeadKey, Nonce};
pub use error::CryptoError;
pub use sha256::{sha256, Digest, Sha256};
