//! X25519 Diffie–Hellman key agreement (RFC 7748).
//!
//! The RA-TLS handshake between clients and the KeyService enclave, and the
//! mutual-attestation channel between KeyService and SeMIRT enclaves, derive
//! their session keys from an X25519 exchange whose public keys are bound to
//! the attestation quotes.
//!
//! Field arithmetic over GF(2^255 - 19) uses five 51-bit limbs with `u128`
//! intermediates (the classic "donna" representation).

use crate::error::CryptoError;
use rand::RngCore;

/// Length of X25519 public keys, secret keys and shared secrets in bytes.
pub const POINT_LEN: usize = 32;

const MASK_51: u64 = (1 << 51) - 1;

/// Field element in GF(2^255 - 19), five 51-bit limbs.
#[derive(Clone, Copy, Debug)]
struct Fe([u64; 5]);

impl Fe {
    const ZERO: Fe = Fe([0; 5]);
    const ONE: Fe = Fe([1, 0, 0, 0, 0]);

    fn from_bytes(bytes: &[u8; 32]) -> Fe {
        let load64 = |b: &[u8]| -> u64 {
            let mut x = [0u8; 8];
            x.copy_from_slice(b);
            u64::from_le_bytes(x)
        };
        let mut limbs = [0u64; 5];
        limbs[0] = load64(&bytes[0..8]) & MASK_51;
        limbs[1] = (load64(&bytes[6..14]) >> 3) & MASK_51;
        limbs[2] = (load64(&bytes[12..20]) >> 6) & MASK_51;
        limbs[3] = (load64(&bytes[19..27]) >> 1) & MASK_51;
        limbs[4] = (load64(&bytes[24..32]) >> 12) & MASK_51;
        Fe(limbs)
    }

    fn to_bytes(self) -> [u8; 32] {
        let mut t = self.reduce_fully();
        let mut out = [0u8; 32];
        let mut acc: u128 = 0;
        let mut bit_offset = 0usize;
        let mut byte_idx = 0usize;
        for limb in t.0.iter_mut() {
            acc |= (*limb as u128) << bit_offset;
            bit_offset += 51;
            while bit_offset >= 8 {
                out[byte_idx] = (acc & 0xff) as u8;
                acc >>= 8;
                bit_offset -= 8;
                byte_idx += 1;
            }
        }
        if byte_idx < 32 {
            out[byte_idx] = (acc & 0xff) as u8;
        }
        out
    }

    /// Carries limbs so each is below 2^52 (loose reduction).
    fn carry(mut self) -> Fe {
        for _ in 0..2 {
            let mut c;
            c = self.0[0] >> 51;
            self.0[0] &= MASK_51;
            self.0[1] += c;
            c = self.0[1] >> 51;
            self.0[1] &= MASK_51;
            self.0[2] += c;
            c = self.0[2] >> 51;
            self.0[2] &= MASK_51;
            self.0[3] += c;
            c = self.0[3] >> 51;
            self.0[3] &= MASK_51;
            self.0[4] += c;
            c = self.0[4] >> 51;
            self.0[4] &= MASK_51;
            self.0[0] += c * 19;
        }
        self
    }

    /// Fully reduces into canonical form [0, p).
    fn reduce_fully(self) -> Fe {
        let mut t = self.carry();
        // Now limbs < 2^51 (possibly representing a value in [0, 2p)).
        // Conditionally subtract p = 2^255 - 19.
        let mut minus_p = t;
        minus_p.0[0] = minus_p.0[0].wrapping_add(19);
        let mut carry = minus_p.0[0] >> 51;
        minus_p.0[0] &= MASK_51;
        for i in 1..5 {
            minus_p.0[i] = minus_p.0[i].wrapping_add(carry);
            carry = minus_p.0[i] >> 51;
            minus_p.0[i] &= MASK_51;
        }
        // carry is 1 iff t + 19 >= 2^255, i.e. t >= p.
        let select_minus = carry.wrapping_neg(); // all ones if t >= p
        for i in 0..5 {
            t.0[i] = (t.0[i] & !select_minus) | (minus_p.0[i] & select_minus);
        }
        t
    }

    fn add(self, other: Fe) -> Fe {
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + other.0[i];
        }
        Fe(out).carry()
    }

    fn sub(self, other: Fe) -> Fe {
        // Add 2p before subtracting to stay positive.
        const TWO_P: [u64; 5] = [
            0xfffffffffffda,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
            0xffffffffffffe,
        ];
        let mut out = [0u64; 5];
        for i in 0..5 {
            out[i] = self.0[i] + TWO_P[i] - other.0[i];
        }
        Fe(out).carry()
    }

    fn mul(self, other: Fe) -> Fe {
        let a = self.0;
        let b = other.0;
        let b1_19 = b[1] * 19;
        let b2_19 = b[2] * 19;
        let b3_19 = b[3] * 19;
        let b4_19 = b[4] * 19;

        let m = |x: u64, y: u64| -> u128 { x as u128 * y as u128 };

        let c0 = m(a[0], b[0]) + m(a[1], b4_19) + m(a[2], b3_19) + m(a[3], b2_19) + m(a[4], b1_19);
        let c1 = m(a[0], b[1]) + m(a[1], b[0]) + m(a[2], b4_19) + m(a[3], b3_19) + m(a[4], b2_19);
        let c2 = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + m(a[3], b4_19) + m(a[4], b3_19);
        let c3 = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + m(a[4], b4_19);
        let c4 = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        Fe::carry_wide([c0, c1, c2, c3, c4])
    }

    fn square(self) -> Fe {
        self.mul(self)
    }

    fn carry_wide(mut c: [u128; 5]) -> Fe {
        let mut out = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            c[i] += carry;
            out[i] = (c[i] as u64) & MASK_51;
            carry = c[i] >> 51;
        }
        out[0] += (carry as u64) * 19;
        Fe(out).carry()
    }

    /// Multiplicative inverse via Fermat's little theorem (x^(p-2)).
    fn invert(self) -> Fe {
        // Exponent p - 2 = 2^255 - 21.  Use a simple square-and-multiply over
        // the fixed exponent bits; this is not performance critical.
        let mut result = Fe::ONE;
        let base = self;
        // p - 2 in little-endian bit order.
        let exponent: [u8; 32] = {
            let mut e = [0xffu8; 32];
            e[0] = 0xeb; // 2^255 - 19 - 2 = ...ffffeb
            e[31] = 0x7f;
            e
        };
        for byte_idx in (0..32).rev() {
            for bit in (0..8).rev() {
                result = result.square();
                if (exponent[byte_idx] >> bit) & 1 == 1 {
                    result = result.mul(base);
                }
            }
        }
        result
    }

    fn mul_small(self, scalar: u64) -> Fe {
        let mut c = [0u128; 5];
        for i in 0..5 {
            c[i] = self.0[i] as u128 * scalar as u128;
        }
        Fe::carry_wide(c)
    }
}

fn ct_swap(choice: u64, a: &mut Fe, b: &mut Fe) {
    let mask = choice.wrapping_neg();
    for i in 0..5 {
        let t = mask & (a.0[i] ^ b.0[i]);
        a.0[i] ^= t;
        b.0[i] ^= t;
    }
}

/// Clamps a 32-byte scalar as specified by RFC 7748 §5.
#[must_use]
pub fn clamp_scalar(mut scalar: [u8; 32]) -> [u8; 32] {
    scalar[0] &= 248;
    scalar[31] &= 127;
    scalar[31] |= 64;
    scalar
}

/// Scalar multiplication: computes `scalar * point` on Curve25519.
#[must_use]
pub fn x25519(scalar: [u8; 32], point: [u8; 32]) -> [u8; 32] {
    let scalar = clamp_scalar(scalar);
    let x1 = Fe::from_bytes(&point);

    let mut x2 = Fe::ONE;
    let mut z2 = Fe::ZERO;
    let mut x3 = x1;
    let mut z3 = Fe::ONE;
    let mut swap = 0u64;

    for t in (0..255).rev() {
        let bit = ((scalar[t / 8] >> (t % 8)) & 1) as u64;
        swap ^= bit;
        ct_swap(swap, &mut x2, &mut x3);
        ct_swap(swap, &mut z2, &mut z3);
        swap = bit;

        let a = x2.add(z2);
        let aa = a.square();
        let b = x2.sub(z2);
        let bb = b.square();
        let e = aa.sub(bb);
        let c = x3.add(z3);
        let d = x3.sub(z3);
        let da = d.mul(a);
        let cb = c.mul(b);
        x3 = da.add(cb).square();
        z3 = x1.mul(da.sub(cb).square());
        x2 = aa.mul(bb);
        z2 = e.mul(aa.add(e.mul_small(121_665)));
    }

    ct_swap(swap, &mut x2, &mut x3);
    ct_swap(swap, &mut z2, &mut z3);

    x2.mul(z2.invert()).to_bytes()
}

/// The X25519 base point (u = 9).
#[must_use]
pub fn base_point() -> [u8; 32] {
    let mut point = [0u8; 32];
    point[0] = 9;
    point
}

/// An ephemeral X25519 key pair.
#[derive(Clone)]
pub struct EphemeralKeyPair {
    secret: [u8; 32],
    /// Public key (u-coordinate).
    pub public: [u8; 32],
}

impl std::fmt::Debug for EphemeralKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EphemeralKeyPair(public={})",
            crate::sha256::sha256(self.public).to_hex()[..8].to_string()
        )
    }
}

impl EphemeralKeyPair {
    /// Generates a fresh key pair using `rng`.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        Self::from_secret(secret)
    }

    /// Builds a key pair from raw secret bytes (clamped internally).
    #[must_use]
    pub fn from_secret(secret: [u8; 32]) -> Self {
        let public = x25519(secret, base_point());
        EphemeralKeyPair { secret, public }
    }

    /// Computes the shared secret with a peer's public key.
    ///
    /// Rejects the all-zero result, per RFC 7748 §6.1, to catch small-order
    /// points contributed by a malicious peer.
    pub fn diffie_hellman(&self, peer_public: &[u8; 32]) -> Result<[u8; 32], CryptoError> {
        let shared = x25519(self.secret, *peer_public);
        if shared.iter().all(|&b| b == 0) {
            return Err(CryptoError::WeakSharedSecret);
        }
        Ok(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..32 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector_1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let point = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        let out = x25519(scalar, point);
        assert_eq!(
            hex(&out),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 test vector 2.
    #[test]
    fn rfc7748_vector_2() {
        let scalar = unhex32("4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d");
        let point = unhex32("e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493");
        let out = x25519(scalar, point);
        assert_eq!(
            hex(&out),
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        );
    }

    // RFC 7748 §6.1 Diffie-Hellman example.
    #[test]
    fn rfc7748_dh_example() {
        let alice_secret =
            unhex32("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
        let bob_secret =
            unhex32("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
        let alice = EphemeralKeyPair::from_secret(alice_secret);
        let bob = EphemeralKeyPair::from_secret(bob_secret);
        assert_eq!(
            hex(&alice.public),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex(&bob.public),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let shared_a = alice.diffie_hellman(&bob.public).unwrap();
        let shared_b = bob.diffie_hellman(&alice.public).unwrap();
        assert_eq!(shared_a, shared_b);
        assert_eq!(
            hex(&shared_a),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn iterated_scalar_mult_1000_not_needed_but_one_iteration_matches() {
        // RFC 7748 §5.2: after one iteration of k := X25519(k, u) with
        // k = u = 9 we should get the listed value.
        let k = unhex32("0900000000000000000000000000000000000000000000000000000000000000");
        let out = x25519(k, k);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn all_zero_peer_key_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let pair = EphemeralKeyPair::generate(&mut rng);
        assert!(matches!(
            pair.diffie_hellman(&[0u8; 32]),
            Err(CryptoError::WeakSharedSecret)
        ));
    }

    #[test]
    fn debug_does_not_print_secret() {
        let pair = EphemeralKeyPair::from_secret([0x55; 32]);
        let text = format!("{pair:?}");
        assert!(!text.contains("55555555"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn dh_is_commutative(seed_a: u64, seed_b: u64) {
            let mut rng_a = StdRng::seed_from_u64(seed_a);
            let mut rng_b = StdRng::seed_from_u64(seed_b.wrapping_add(1) | 1);
            let a = EphemeralKeyPair::generate(&mut rng_a);
            let b = EphemeralKeyPair::generate(&mut rng_b);
            let s1 = a.diffie_hellman(&b.public).unwrap();
            let s2 = b.diffie_hellman(&a.public).unwrap();
            prop_assert_eq!(s1, s2);
        }
    }
}
