//! ChaCha20 stream cipher (RFC 8439 §2.3–2.4).
//!
//! Used as the record-protection cipher for RA-TLS channels (the alternative
//! AEAD suite); the block function is also reused by Poly1305 key generation.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block.
#[must_use]
pub fn chacha20_block(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR with the keystream starting at
/// block `initial_counter`).
pub fn chacha20_xor(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    for (block_idx, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let counter = initial_counter.wrapping_add(block_idx as u32);
        let keystream = chacha20_block(key, counter, nonce);
        for (byte, ks) in chunk.iter_mut().zip(keystream.iter()) {
            *byte ^= ks;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let key: Vec<u8> = (0u8..32).collect();
        let mut key_arr = [0u8; 32];
        key_arr.copy_from_slice(&key);
        let nonce = unhex("000000090000004a00000000");
        let mut nonce_arr = [0u8; 12];
        nonce_arr.copy_from_slice(&nonce);
        let block = chacha20_block(&key_arr, 1, &nonce_arr);
        let expected = unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key: Vec<u8> = (0u8..32).collect();
        let mut key_arr = [0u8; 32];
        key_arr.copy_from_slice(&key);
        let nonce = unhex("000000000000004a00000000");
        let mut nonce_arr = [0u8; 12];
        nonce_arr.copy_from_slice(&nonce);
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        chacha20_xor(&key_arr, &nonce_arr, 1, &mut data);
        let expected = unhex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_is_an_involution() {
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        let original: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, 5, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, &nonce, 5, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_counters_give_different_keystreams() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        assert_ne!(
            chacha20_block(&key, 0, &nonce),
            chacha20_block(&key, 1, &nonce)
        );
    }
}
