//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8).
//!
//! Used for RA-TLS record protection.  The 16-byte [`AeadKey`] is expanded to
//! the 32-byte ChaCha20 key via HKDF so that the rest of the workspace can use
//! a single key type for both AEAD suites.

use crate::aead::{Aead, AeadKey, Nonce, TAG_LEN};
use crate::chacha20::{chacha20_block, chacha20_xor, KEY_LEN as CHACHA_KEY_LEN};
use crate::ct::ct_eq;
use crate::error::CryptoError;
use crate::poly1305::poly1305;

/// ChaCha20-Poly1305 cipher instance.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; CHACHA_KEY_LEN],
}

impl ChaCha20Poly1305 {
    /// Creates a cipher from a 16-byte workspace key (expanded via HKDF).
    #[must_use]
    pub fn new(key: &AeadKey) -> Self {
        let okm = crate::hkdf::hkdf(
            b"sesemi-chacha20poly1305",
            key.as_bytes(),
            b"record-protection",
            CHACHA_KEY_LEN,
        );
        let mut expanded = [0u8; CHACHA_KEY_LEN];
        expanded.copy_from_slice(&okm);
        ChaCha20Poly1305 { key: expanded }
    }

    /// Creates a cipher directly from a full 32-byte ChaCha20 key (used by the
    /// RA-TLS handshake which already derives 32-byte session keys).
    #[must_use]
    pub fn from_full_key(key: [u8; CHACHA_KEY_LEN]) -> Self {
        ChaCha20Poly1305 { key }
    }

    fn mac(&self, nonce: &Nonce, aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
        // Poly1305 one-time key = first 32 bytes of the counter-0 block.
        let block0 = chacha20_block(&self.key, 0, nonce.as_bytes());
        let mut otk = [0u8; 32];
        otk.copy_from_slice(&block0[..32]);

        // MAC input: aad || pad || ciphertext || pad || len(aad) || len(ct).
        let mut mac_data = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
        mac_data.extend_from_slice(aad);
        mac_data.resize(mac_data.len().div_ceil(16) * 16, 0);
        mac_data.extend_from_slice(ciphertext);
        mac_data.resize(mac_data.len().div_ceil(16) * 16, 0);
        mac_data.extend_from_slice(&(aad.len() as u64).to_le_bytes());
        mac_data.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
        poly1305(&otk, &mac_data)
    }
}

impl Aead for ChaCha20Poly1305 {
    fn seal(&self, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        chacha20_xor(&self.key, nonce.as_bytes(), 1, &mut out);
        let tag = self.mac(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    fn open(&self, nonce: &Nonce, ciphertext: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if ciphertext.len() < TAG_LEN {
            return Err(CryptoError::AuthenticationFailed);
        }
        let (body, tag) = ciphertext.split_at(ciphertext.len() - TAG_LEN);
        let expected = self.mac(nonce, aad, body);
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut plaintext = body.to_vec();
        chacha20_xor(&self.key, nonce.as_bytes(), 1, &mut plaintext);
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 8439 §2.8.2 AEAD test vector (full 32-byte key path).
    #[test]
    fn rfc8439_aead_vector() {
        let key: Vec<u8> = (0x80u8..0xa0).collect();
        let mut key_arr = [0u8; 32];
        key_arr.copy_from_slice(&key);
        let cipher = ChaCha20Poly1305::from_full_key(key_arr);
        let nonce_bytes = unhex("070000004041424344454647");
        let mut nonce_arr = [0u8; 12];
        nonce_arr.copy_from_slice(&nonce_bytes);
        let nonce = Nonce::from_bytes(nonce_arr);
        let aad = unhex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";

        let sealed = cipher.seal(&nonce, plaintext, &aad);
        let expected_ct = "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d63dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b3692ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc3ff4def08e4b7a9de576d26586cec64b6116";
        let expected_tag = "1ae10b594f09e26a7e902ecbd0600691";
        assert_eq!(hex(&sealed), format!("{expected_ct}{expected_tag}"));

        let opened = cipher.open(&nonce, &sealed, &aad).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn workspace_key_roundtrip_and_tamper_detection() {
        let key = AeadKey::from_bytes([0x42; 16]);
        let cipher = ChaCha20Poly1305::new(&key);
        let nonce = Nonce::from_counter(3, 77);
        let sealed = cipher.seal(&nonce, b"inference request", b"m0");
        assert_eq!(
            cipher.open(&nonce, &sealed, b"m0").unwrap(),
            b"inference request"
        );

        let mut bad = sealed.clone();
        bad[2] ^= 0x40;
        assert!(cipher.open(&nonce, &bad, b"m0").is_err());
        assert!(cipher.open(&nonce, &sealed, b"m1").is_err());
        assert!(cipher.open(&nonce, &sealed[..4], b"m0").is_err());
    }

    #[test]
    fn suites_are_not_interchangeable() {
        use crate::gcm::Aes128Gcm;
        let key = AeadKey::from_bytes([5u8; 16]);
        let gcm = Aes128Gcm::new(&key);
        let chacha = ChaCha20Poly1305::new(&key);
        let nonce = Nonce::from_bytes([0u8; 12]);
        let sealed = gcm.seal(&nonce, b"payload", b"");
        assert!(chacha.open(&nonce, &sealed, b"").is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip(key: [u8; 16], nonce: [u8; 12], plaintext: Vec<u8>, aad: Vec<u8>) {
            let cipher = ChaCha20Poly1305::new(&AeadKey::from_bytes(key));
            let nonce = Nonce::from_bytes(nonce);
            let sealed = cipher.seal(&nonce, &plaintext, &aad);
            prop_assert_eq!(cipher.open(&nonce, &sealed, &aad).unwrap(), plaintext);
        }
    }
}
