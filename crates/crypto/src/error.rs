//! Error type shared by all primitives in this crate.

use std::fmt;

/// Errors produced by cryptographic operations.
///
/// The variants are intentionally coarse: authenticated decryption failures do
/// not reveal *why* authentication failed (truncated ciphertext, wrong key,
/// tampered associated data, ...), mirroring the behaviour of production AEAD
/// APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// An AEAD open failed: the tag did not verify or the ciphertext is
    /// malformed (e.g. shorter than the authentication tag).
    AuthenticationFailed,
    /// A key, nonce or other parameter had an invalid length.
    InvalidLength {
        /// Human readable name of the offending parameter.
        what: &'static str,
        /// Expected length in bytes.
        expected: usize,
        /// Observed length in bytes.
        actual: usize,
    },
    /// A Diffie–Hellman exchange produced an all-zero shared secret
    /// (contributory behaviour check of RFC 7748 §6.1).
    WeakSharedSecret,
    /// The plaintext or ciphertext exceeds the limits of the cipher
    /// construction (e.g. the 2^36-31 byte GCM limit).
    MessageTooLong,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "authenticated decryption failed"),
            CryptoError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(
                f,
                "invalid length for {what}: expected {expected} bytes, got {actual}"
            ),
            CryptoError::WeakSharedSecret => {
                write!(f, "Diffie-Hellman produced an all-zero shared secret")
            }
            CryptoError::MessageTooLong => write!(f, "message exceeds cipher length limit"),
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CryptoError::InvalidLength {
            what: "nonce",
            expected: 12,
            actual: 7,
        };
        let text = err.to_string();
        assert!(text.contains("nonce"));
        assert!(text.contains("12"));
        assert!(text.contains('7'));
        assert!(CryptoError::AuthenticationFailed
            .to_string()
            .contains("failed"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CryptoError::AuthenticationFailed,
            CryptoError::AuthenticationFailed
        );
        assert_ne!(
            CryptoError::AuthenticationFailed,
            CryptoError::WeakSharedSecret
        );
    }
}
