//! Common AEAD abstractions shared by AES-128-GCM and ChaCha20-Poly1305.
//!
//! SeSeMI encrypts three kinds of payloads with an AEAD: the model blob (with
//! the model key `K_M`), the user request and response (with the request key
//! `K_R`), and RA-TLS records (with session keys derived from the handshake).
//! All three flow through the [`Aead`] trait so higher layers never care which
//! suite is in use.

use crate::error::CryptoError;
use rand::RngCore;

/// Length of AEAD keys (both suites use 128-bit keys here; ChaCha20 expands a
/// 16-byte seed into its 32-byte key internally to keep a single key type).
pub const KEY_LEN: usize = 16;
/// Length of AEAD nonces in bytes (96 bits, the GCM / ChaCha20 standard size).
pub const NONCE_LEN: usize = 12;
/// Length of authentication tags in bytes.
pub const TAG_LEN: usize = 16;

/// A 128-bit symmetric key used for AEAD encryption.
///
/// In the paper this corresponds to the model key `K_M`, the request key
/// `K_R`, or an RA-TLS session key.  Keys deliberately do not implement
/// `Debug`-printing of their contents.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AeadKey {
    bytes: [u8; KEY_LEN],
}

impl AeadKey {
    /// Wraps raw key bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        AeadKey { bytes }
    }

    /// Generates a fresh random key using the provided RNG.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        AeadKey { bytes }
    }

    /// Returns the raw key bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.bytes
    }

    /// Derives a sub-key bound to a textual `purpose`, e.g. separating the
    /// request-encryption key from the response-encryption key.
    #[must_use]
    pub fn derive_subkey(&self, purpose: &str) -> AeadKey {
        let okm = crate::hkdf::hkdf(b"sesemi-subkey", &self.bytes, purpose.as_bytes(), KEY_LEN);
        let mut bytes = [0u8; KEY_LEN];
        bytes.copy_from_slice(&okm);
        AeadKey { bytes }
    }
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material; show a short fingerprint instead.
        let fp = crate::sha256::sha256(self.bytes);
        write!(f, "AeadKey(fp={})", &fp.to_hex()[..8])
    }
}

/// A 96-bit AEAD nonce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Nonce {
    bytes: [u8; NONCE_LEN],
}

impl Nonce {
    /// Wraps raw nonce bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; NONCE_LEN]) -> Self {
        Nonce { bytes }
    }

    /// Generates a random nonce.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut bytes);
        Nonce { bytes }
    }

    /// Builds a counter-based nonce from a 32-bit channel id and a 64-bit
    /// sequence number, the scheme used for RA-TLS records where both sides
    /// track the sequence number implicitly.
    #[must_use]
    pub fn from_counter(channel: u32, sequence: u64) -> Self {
        let mut bytes = [0u8; NONCE_LEN];
        bytes[..4].copy_from_slice(&channel.to_be_bytes());
        bytes[4..].copy_from_slice(&sequence.to_be_bytes());
        Nonce { bytes }
    }

    /// Returns the raw nonce bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; NONCE_LEN] {
        &self.bytes
    }
}

/// Authenticated encryption with associated data.
pub trait Aead {
    /// Encrypts `plaintext`, authenticating it together with `aad`, returning
    /// `ciphertext || tag`.
    fn seal(&self, nonce: &Nonce, plaintext: &[u8], aad: &[u8]) -> Vec<u8>;

    /// Decrypts and authenticates `ciphertext || tag`; returns the plaintext
    /// or [`CryptoError::AuthenticationFailed`].
    fn open(&self, nonce: &Nonce, ciphertext: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError>;
}

/// An encrypted envelope: nonce + ciphertext + the AAD that was bound at
/// sealing time (stored for transparency, it is not secret).
///
/// This is the wire format used for encrypted models and encrypted requests:
/// the nonce travels with the ciphertext, the AAD carries public routing
/// metadata (e.g. the model id) so it cannot be swapped undetected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBox {
    /// Nonce used for this encryption.
    pub nonce: Nonce,
    /// Ciphertext with the 16-byte tag appended.
    pub ciphertext: Vec<u8>,
    /// Associated data authenticated together with the plaintext.
    pub aad: Vec<u8>,
}

impl SealedBox {
    /// Encrypts `plaintext` under `key` with a random nonce.
    pub fn seal<A: Aead, R: RngCore>(
        cipher: &A,
        rng: &mut R,
        plaintext: &[u8],
        aad: &[u8],
    ) -> Self {
        let nonce = Nonce::generate(rng);
        let ciphertext = cipher.seal(&nonce, plaintext, aad);
        SealedBox {
            nonce,
            ciphertext,
            aad: aad.to_vec(),
        }
    }

    /// Decrypts the box with `cipher`.
    pub fn open<A: Aead>(&self, cipher: &A) -> Result<Vec<u8>, CryptoError> {
        cipher.open(&self.nonce, &self.ciphertext, &self.aad)
    }

    /// Total size of the sealed representation in bytes (nonce + ciphertext +
    /// aad), used by the enclave memory accounting: encrypted copies occupy
    /// enclave memory until decryption completes (paper Appendix D).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        NONCE_LEN + self.ciphertext.len() + self.aad.len()
    }

    /// Serializes the sealed box into a flat byte vector
    /// (`nonce || u32 aad_len || aad || ciphertext`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len() + 4);
        out.extend_from_slice(self.nonce.as_bytes());
        out.extend_from_slice(&(self.aad.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.aad);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses a sealed box produced by [`SealedBox::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() < NONCE_LEN + 4 {
            return Err(CryptoError::InvalidLength {
                what: "sealed box",
                expected: NONCE_LEN + 4,
                actual: bytes.len(),
            });
        }
        let mut nonce = [0u8; NONCE_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        let aad_len = u32::from_be_bytes([
            bytes[NONCE_LEN],
            bytes[NONCE_LEN + 1],
            bytes[NONCE_LEN + 2],
            bytes[NONCE_LEN + 3],
        ]) as usize;
        let rest = &bytes[NONCE_LEN + 4..];
        if rest.len() < aad_len {
            return Err(CryptoError::InvalidLength {
                what: "sealed box aad",
                expected: aad_len,
                actual: rest.len(),
            });
        }
        Ok(SealedBox {
            nonce: Nonce::from_bytes(nonce),
            aad: rest[..aad_len].to_vec(),
            ciphertext: rest[aad_len..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcm::Aes128Gcm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn key_debug_does_not_leak_bytes() {
        let key = AeadKey::from_bytes([0xAB; 16]);
        let text = format!("{key:?}");
        assert!(!text.contains("ABAB"));
        assert!(!text.contains("171"));
        assert!(text.starts_with("AeadKey(fp="));
    }

    #[test]
    fn counter_nonce_is_unique_per_sequence() {
        let a = Nonce::from_counter(1, 1);
        let b = Nonce::from_counter(1, 2);
        let c = Nonce::from_counter(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn subkey_derivation_is_purpose_separated() {
        let key = AeadKey::from_bytes([9u8; 16]);
        assert_ne!(key.derive_subkey("request"), key.derive_subkey("response"));
        assert_eq!(key.derive_subkey("request"), key.derive_subkey("request"));
    }

    #[test]
    fn sealed_box_roundtrip_and_serialization() {
        let mut rng = StdRng::seed_from_u64(7);
        let key = AeadKey::generate(&mut rng);
        let cipher = Aes128Gcm::new(&key);
        let sealed = SealedBox::seal(&cipher, &mut rng, b"patient record", b"model-7");
        assert_eq!(sealed.open(&cipher).unwrap(), b"patient record");

        let bytes = sealed.to_bytes();
        let parsed = SealedBox::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, sealed);
        assert_eq!(parsed.open(&cipher).unwrap(), b"patient record");
    }

    #[test]
    fn sealed_box_rejects_truncated_input() {
        assert!(SealedBox::from_bytes(&[0u8; 3]).is_err());
        let mut rng = StdRng::seed_from_u64(7);
        let key = AeadKey::generate(&mut rng);
        let cipher = Aes128Gcm::new(&key);
        let sealed = SealedBox::seal(&cipher, &mut rng, b"x", b"aad-that-is-long");
        let mut bytes = sealed.to_bytes();
        bytes.truncate(NONCE_LEN + 4 + 3);
        assert!(SealedBox::from_bytes(&bytes).is_err());
    }

    #[test]
    fn tampered_aad_fails_to_open() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = AeadKey::generate(&mut rng);
        let cipher = Aes128Gcm::new(&key);
        let mut sealed = SealedBox::seal(&cipher, &mut rng, b"secret", b"model-a");
        sealed.aad = b"model-b".to_vec();
        assert!(matches!(
            sealed.open(&cipher),
            Err(CryptoError::AuthenticationFailed)
        ));
    }
}
