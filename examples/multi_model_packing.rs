//! FnPacker in action (paper §IV-C and §VI-D): serving many models with
//! infrequent, unpredictable traffic.
//!
//! This example replays the paper's Table III / Table IV workload — two
//! popular models with continuous Poisson traffic plus interactive sessions
//! that try out five models one after another — under the three multi-model
//! deployments (All-in-one, One-to-one, FnPacker) using the cluster
//! simulator, and prints the resulting latencies and cold-start counts.
//!
//! Run with:
//! ```text
//! cargo run --example multi_model_packing --release
//! ```

use sesemi::baseline::ServingStrategy;
use sesemi::cluster::{ClusterConfig, ClusterSimulation};
use sesemi_fnpacker::RoutingStrategy;
use sesemi_inference::{Framework, ModelId, ModelKind, ModelProfile};
use sesemi_sim::{SimDuration, SimRng};
use sesemi_workload::{ArrivalProcess, InteractiveSession};

fn main() {
    // Five TVM-RSNET models m0..m4, as in §VI-D.
    let models: Vec<(ModelId, ModelProfile)> = (0..5)
        .map(|i| {
            (
                ModelId::new(format!("m{i}")),
                ModelProfile::paper(ModelKind::RsNet, Framework::Tvm),
            )
        })
        .collect();
    let duration = SimDuration::from_secs(480);

    println!("multi-model serving: m0/m1 at 2 rps Poisson + two interactive sessions over m0-m4\n");
    println!(
        "{:<12} {:>18} {:>14} {:>12} {:>16}",
        "strategy", "avg m0/m1 (ms)", "cold starts", "sandboxes", "session-1 m3 (s)"
    );

    for routing in RoutingStrategy::ALL {
        let mut config = ClusterConfig::multi_node_sgx2();
        config.routing = routing;
        config.strategy = ServingStrategy::Sesemi;
        config.tcs_per_container = 1;
        config.seed = 11;
        let mut sim = ClusterSimulation::new(config, models.clone());

        // Background Poisson traffic on the popular models.
        let mut rng = SimRng::seed_from_u64(11);
        let mut arrivals = ArrivalProcess::Poisson { rate_per_sec: 2.0 }.generate(
            &models[0].0,
            0,
            duration,
            &mut rng,
        );
        arrivals.extend(ArrivalProcess::Poisson { rate_per_sec: 2.0 }.generate(
            &models[1].0,
            1,
            duration,
            &mut rng,
        ));
        arrivals.sort_by_key(|a| a.at);
        sim.add_arrivals(arrivals);

        // Interactive sessions that sequentially try every model.
        let ids: Vec<ModelId> = models.iter().map(|(m, _)| m.clone()).collect();
        for session in InteractiveSession::paper_sessions(&ids) {
            sim.add_session(session);
        }

        let result = sim.run(duration);

        let mut popular = sesemi_sim::LatencyStats::new();
        for model in ["m0", "m1"] {
            if let Some(stats) = result.per_model_latency.get(&ModelId::new(model)) {
                popular.merge(stats);
            }
        }
        let session_m3 = result
            .session_latencies
            .iter()
            .find(|(name, model, _)| name == "Session 1" && model.as_str() == "m3")
            .map(|(_, _, latency)| latency.as_secs_f64())
            .unwrap_or(f64::NAN);

        println!(
            "{:<12} {:>18.1} {:>14} {:>12} {:>16.2}",
            routing.label(),
            popular.mean().as_millis_f64(),
            result.cold_starts,
            result.peak_sandboxes,
            session_m3,
        );
    }

    println!("\nexpected shape (paper Tables III/IV):");
    println!(
        "  * All-in-one inflates the popular models' latency (endpoints keep swapping models);"
    );
    println!(
        "  * One-to-one keeps the popular models fast but cold-starts every rarely-used model;"
    );
    println!("  * FnPacker matches One-to-one on popular models and avoids the cold starts for rare ones.");
}
