//! Access control and attestation walk-through: what exactly KeyService
//! checks before it hands decryption keys to an enclave (paper §IV-A and the
//! security analysis of §IV-D).
//!
//! The example shows four attack attempts failing for four different reasons:
//! 1. an enclave with *different code* (e.g. concurrency settings changed)
//!    has a different measurement and gets nothing;
//! 2. a user that was never granted access gets nothing even with a valid
//!    request key;
//! 3. a request encrypted for model A cannot be replayed against model B
//!    (AEAD binding);
//! 4. a tampered encrypted model fails authenticated decryption inside the
//!    enclave.
//!
//! Run with:
//! ```text
//! cargo run --example access_control --release
//! ```

use sesemi::deployment::{Deployment, DeploymentError};
use sesemi_inference::{Framework, ModelKind};
use sesemi_runtime::{RuntimeError, SemirtConfig};

fn main() {
    let mut deployment = Deployment::builder().seed(99).build();
    let mut owner = deployment.register_owner("clinic");
    let mut alice = deployment.register_user("alice");
    let mut eve = deployment.register_user("eve");

    let model = owner
        .publish_model(&deployment, ModelKind::MbNet, 0.02)
        .expect("publish");
    let input_dim = deployment.model_input_dim(&model).unwrap();
    let features = vec![0.5f32; input_dim];

    // The function alice is allowed to use: concurrent SeMIRT with TVM.
    let approved = deployment.deploy_function(Framework::Tvm, 4).unwrap();
    owner
        .grant_access(&deployment, &model, &approved, alice.party())
        .unwrap();
    alice.authorize(&deployment, &model, &approved).unwrap();
    let ok = deployment
        .infer(&alice, &approved, &model, &features)
        .expect("authorized inference succeeds");
    println!(
        "[ok] alice on the approved enclave: path {:?}",
        ok.report.path
    );

    // 1. Same code but different build-time settings => different MRENCLAVE.
    //    KeyService has no grant for it, so provisioning fails.
    let modified = deployment
        .deploy_function_with_config(
            SemirtConfig::new(Framework::Tvm, 256 * 1024 * 1024, 4).with_strong_isolation(),
        )
        .unwrap();
    println!(
        "approved enclave E_S = {}, modified enclave E_S' = {}",
        approved.measurement.fingerprint(),
        modified.measurement.fingerprint()
    );
    alice.authorize(&deployment, &model, &modified).unwrap();
    match deployment.infer(&alice, &modified, &model, &features) {
        Err(DeploymentError::Runtime(RuntimeError::KeyProvisioning(err))) => {
            println!("[blocked] differently-configured enclave: {err}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // 2. A user without a grant.
    eve.authorize(&deployment, &model, &approved).unwrap();
    match deployment.infer(&eve, &approved, &model, &features) {
        Err(DeploymentError::Runtime(RuntimeError::KeyProvisioning(err))) => {
            println!("[blocked] user without an owner grant: {err}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // 3. Replay alice's ciphertext against a different model id: the request
    //    AAD binds the model id, so decryption inside the enclave fails.
    let second_model = owner
        .publish_model(&deployment, ModelKind::DsNet, 0.02)
        .unwrap();
    owner
        .grant_access(&deployment, &second_model, &approved, alice.party())
        .unwrap();
    alice
        .authorize(&deployment, &second_model, &approved)
        .unwrap();
    let mut replayed = deployment
        .encrypt_request(&mut alice, &approved, &model, &features)
        .unwrap();
    replayed.model = second_model.clone();
    let instance = deployment.instance(&approved).unwrap();
    match instance.handle_request(0, &replayed) {
        Err(RuntimeError::RequestDecryption) => {
            println!(
                "[blocked] ciphertext replayed for a different model: request decryption failed"
            );
        }
        other => panic!("expected decryption failure, got {other:?}"),
    }

    // 4. The cloud tampers with alice's encrypted request in flight.
    let mut tampered = deployment
        .encrypt_request(&mut alice, &approved, &model, &features)
        .unwrap();
    tampered.payload.ciphertext[0] ^= 0x80;
    match instance.handle_request(0, &tampered) {
        Err(RuntimeError::RequestDecryption) => {
            println!("[blocked] tampered request ciphertext: authentication failed");
        }
        other => panic!("expected decryption failure, got {other:?}"),
    }

    println!("\nevery rejection happened inside attested components, not in client-side checks.");
}
