//! Quickstart: the minimal SeSeMI workflow from the paper's §III.
//!
//! A model owner publishes an encrypted model, a user is granted access, and
//! an encrypted inference request is served inside a SeMIRT enclave.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart --release
//! ```

use sesemi::deployment::Deployment;
use sesemi_inference::{Framework, ModelKind};

fn main() {
    // 1. Stand up the deployment: an SGX2 node, the attestation authority,
    //    the KeyService enclave and empty cloud storage.
    let mut deployment = Deployment::builder().seed(2024).build();
    println!(
        "KeyService enclave measurement (E_K): {}",
        deployment.keyservice_measurement().fingerprint()
    );

    // 2. Key setup: owner and user attest KeyService and register their
    //    long-term identity keys.
    let mut owner = deployment.register_owner("acme-models");
    let mut user = deployment.register_user("alice");
    println!("owner identity: {}", owner.party());
    println!("user identity:  {}", user.party());

    // 3. Service deployment: the owner encrypts and uploads a MobileNet-sized
    //    model and deploys a SeMIRT function (TVM backend, 4 TCS).
    let model_id = owner
        .publish_model(&deployment, ModelKind::MbNet, 0.02)
        .expect("publish model");
    // A single-TCS function keeps the example output simple: the first
    // request is cold, every later one is hot.
    let function = deployment
        .deploy_function(Framework::Tvm, 1)
        .expect("deploy SeMIRT function");
    println!(
        "published {model_id}; SeMIRT enclave identity (E_S): {}",
        function.measurement.fingerprint()
    );

    // 4. Access control: the owner grants alice access to the model when it
    //    is served by this exact enclave identity; alice registers a request
    //    key bound to the same identity.
    owner
        .grant_access(&deployment, &model_id, &function, user.party())
        .expect("grant access");
    user.authorize(&deployment, &model_id, &function)
        .expect("register request key");

    // 5. Request serving: alice's features are encrypted with her request
    //    key, decrypted only inside the enclave, and the prediction comes
    //    back encrypted under the same key.
    let input_dim = deployment.model_input_dim(&model_id).expect("model exists");
    let features: Vec<f32> = (0..input_dim).map(|i| (i as f32 * 0.01).sin()).collect();

    for round in 1..=3 {
        let outcome = deployment
            .infer(&user, &function, &model_id, &features)
            .expect("inference");
        let best_class = outcome
            .prediction
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(idx, _)| idx)
            .unwrap();
        println!(
            "request {round}: served on the {:?} path ({} stages) -> predicted class {best_class}",
            outcome.report.path,
            outcome.report.stages.len(),
        );
    }
    println!("requests after the first reuse the enclave, keys, model and runtime (hot path).");
}
