//! The paper's motivating scenario (Fig. 1): a hospital trains a disease
//! prediction model on electronic health records and serves it to patients
//! and doctors through an untrusted cloud, without revealing either the model
//! or the patients' records to the cloud provider.
//!
//! This example deploys three diagnosis models (different sizes), registers
//! several patients with different access rights, and shows that:
//! * authorized patients get predictions,
//! * the cloud only ever observes ciphertext,
//! * unauthorized users are rejected by KeyService, not by convention.
//!
//! Run with:
//! ```text
//! cargo run --example hospital_ehr --release
//! ```

use sesemi::deployment::{Deployment, DeploymentError};
use sesemi_inference::{Framework, ModelKind};
use sesemi_runtime::RuntimeError;

fn main() {
    let mut deployment = Deployment::builder().seed(7).build();
    let mut hospital = deployment.register_owner("general-hospital");

    // The hospital publishes three models: a lightweight triage model and two
    // heavier diagnosis models.
    let triage = hospital
        .publish_model(&deployment, ModelKind::MbNet, 0.02)
        .expect("publish triage model");
    let cardiology = hospital
        .publish_model(&deployment, ModelKind::DsNet, 0.02)
        .expect("publish cardiology model");
    let oncology = hospital
        .publish_model(&deployment, ModelKind::RsNet, 0.01)
        .expect("publish oncology model");
    println!("published models: {triage}, {cardiology}, {oncology}");

    // One SeMIRT function (TFLM backend — small enclave) serves all three.
    let function = deployment
        .deploy_function(Framework::Tflm, 2)
        .expect("deploy function");

    // Patients register; the hospital grants each one access to the models
    // relevant to their treatment, pinned to this function's enclave identity.
    let mut alice = deployment.register_user("patient-alice");
    let mut bob = deployment.register_user("patient-bob");
    let mut mallory = deployment.register_user("mallory");

    hospital
        .grant_access(&deployment, &triage, &function, alice.party())
        .unwrap();
    hospital
        .grant_access(&deployment, &cardiology, &function, alice.party())
        .unwrap();
    hospital
        .grant_access(&deployment, &triage, &function, bob.party())
        .unwrap();
    // Mallory is granted nothing.

    alice.authorize(&deployment, &triage, &function).unwrap();
    alice
        .authorize(&deployment, &cardiology, &function)
        .unwrap();
    bob.authorize(&deployment, &triage, &function).unwrap();
    // Mallory registers a request key anyway, hoping to slip through.
    mallory
        .authorize(&deployment, &oncology, &function)
        .unwrap();

    // Alice's EHR-derived feature vectors are encrypted with her request key.
    let triage_dim = deployment.model_input_dim(&triage).unwrap();
    let ehr_features: Vec<f32> = (0..triage_dim).map(|i| ((i % 17) as f32) / 17.0).collect();
    let outcome = deployment
        .infer(&alice, &function, &triage, &ehr_features)
        .expect("alice is authorized for triage");
    println!(
        "alice/triage: path={:?}, top probability {:.3}",
        outcome.report.path,
        outcome.prediction.iter().cloned().fold(0.0f32, f32::max)
    );

    let cardio_dim = deployment.model_input_dim(&cardiology).unwrap();
    let outcome = deployment
        .infer(&alice, &function, &cardiology, &vec![0.4; cardio_dim])
        .expect("alice is authorized for cardiology");
    println!(
        "alice/cardiology: path={:?} (model switched inside the same enclave)",
        outcome.report.path
    );

    let outcome = deployment
        .infer(&bob, &function, &triage, &vec![0.1; triage_dim])
        .expect("bob is authorized for triage");
    println!("bob/triage: path={:?}", outcome.report.path);

    // Bob never authorized cardiology: he holds no request key for it.
    let err = deployment
        .infer(&bob, &function, &cardiology, &vec![0.1; cardio_dim])
        .unwrap_err();
    println!("bob/cardiology rejected locally: {err}");

    // Mallory has a request key but no grant from the hospital: KeyService
    // refuses to provision the model key to the enclave for her request.
    let onco_dim = deployment.model_input_dim(&oncology).unwrap();
    match deployment.infer(&mallory, &function, &oncology, &vec![0.5; onco_dim]) {
        Err(DeploymentError::Runtime(RuntimeError::KeyProvisioning(reason))) => {
            println!("mallory/oncology rejected by KeyService: {reason}");
        }
        other => panic!("expected a key-provisioning rejection, got {other:?}"),
    }

    println!(
        "the cloud handled only encrypted models, encrypted requests and encrypted responses."
    );
}
